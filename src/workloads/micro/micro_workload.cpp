#include "workloads/micro/micro_workload.h"

namespace ermia {
namespace micro {

using tpcc::LoadRow;
using tpcc::RowSlice;
using tpcc::StockKey;
using tpcc::StockRow;

Status MicroWorkload::Load(Database* db) {
  stock_ = db->CreateTable("stock");
  stock_pk_ = db->CreateIndex(stock_, "stock_pk");
  FastRandom rng(0xBEEF);
  const uint32_t batch = 512;
  std::unique_ptr<Transaction> txn;
  for (uint32_t i = 1; i <= cfg_.table_rows; ++i) {
    if (!txn) txn = std::make_unique<Transaction>(db, CcScheme::kSi);
    StockRow row{};
    row.s_quantity = static_cast<int32_t>(rng.UniformU64(10, 100));
    ERMIA_RETURN_NOT_OK(txn->Insert(stock_, stock_pk_, StockKey(1, i).slice(),
                                    RowSlice(row), nullptr));
    if (i % batch == 0) {
      ERMIA_RETURN_NOT_OK(txn->Commit());
      txn.reset();
    }
  }
  if (txn) return txn->Commit();
  return Status::OK();
}

Status MicroWorkload::RunTxn(Database* db, CcScheme scheme, size_t /*type*/,
                             uint32_t /*worker_id*/, uint32_t /*num_workers*/,
                             FastRandom& rng) {
  Transaction txn(db, scheme);
  for (uint32_t r = 0; r < cfg_.reads_per_txn; ++r) {
    const uint32_t i =
        static_cast<uint32_t>(rng.UniformU64(1, cfg_.table_rows));
    Oid oid = 0;
    Status s = txn.GetOid(stock_pk_, StockKey(1, i).slice(), &oid);
    if (s.IsNotFound()) continue;
    ERMIA_RETURN_NOT_OK(s);
    Slice raw;
    ERMIA_RETURN_NOT_OK(txn.Read(stock_, oid, &raw));
    if (rng.Bernoulli(cfg_.write_ratio)) {
      StockRow row;
      if (!LoadRow(raw, &row)) return Status::Corruption("stock row");
      row.s_quantity = (row.s_quantity + 1) % 100;
      row.s_ytd++;
      ERMIA_RETURN_NOT_OK(txn.Update(stock_, oid, RowSlice(row)));
    }
  }
  return txn.Commit();
}

}  // namespace micro
}  // namespace ermia
