#include "trace/trace.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>

#include "common/profiling.h"
#include "metrics/json.h"

namespace ermia {
namespace trace {

namespace {

Ring g_rings[kMaxThreads];

std::atomic<uint32_t> g_sample_every{64};

// Per-thread transaction sequence for the 1-in-N sampling decision. Each
// worker samples independently, so every thread contributes slow-path
// coverage regardless of how transactions are distributed.
thread_local uint64_t t_txn_seq = 0;

// Serializes dumps (two concurrent DumpToFd calls would interleave writes to
// different descriptors harmlessly, but both would fight over the scratch
// buffer below). Bounded spin so a signal handler that finds the lock held
// by its own crashed thread cannot deadlock — it gives up instead.
std::atomic_flag g_dump_lock = ATOMIC_FLAG_INIT;

// Signal-safe scratch for one ring snapshot (static: no allocation, and a
// 128 KiB stack frame would be unsafe on a sigaltstack).
struct PlainRecord {
  uint64_t tsc, a, b, meta;
};
PlainRecord g_scratch[kRingEvents];

// write(2) loop handling EINTR and short writes; async-signal-safe.
bool WriteAllFd(int fd, const void* buf, size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<size_t>(w);
  }
  return true;
}

char g_crash_path[512];
struct sigaction g_prev_actions[32];

void CrashHandler(int sig) {
  // Best-effort post-mortem dump; every call here is async-signal-safe.
  const int fd =
      ::open(g_crash_path, O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd >= 0) {
    DumpToFd(fd);
    ::close(fd);
  }
  // Re-raise with the default disposition so the process still dies with
  // the original signal (wait-status oracles in the crash harness rely on
  // WTERMSIG surviving).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

// Slow-transaction sink. threshold_tsc is the hot-path gate: one relaxed
// load and a compare per traced commit.
std::atomic<uint64_t> g_slow_threshold_tsc{0};
std::mutex g_slow_mu;
FILE* g_slow_file = nullptr;       // nullptr = stderr
bool g_slow_file_owned = false;

}  // namespace

const char* EventName(Event e) {
  switch (e) {
    case Event::kNone:
      return "none";
    case Event::kTxnBegin:
      return "txn_begin";
    case Event::kTxnRead:
      return "read";
    case Event::kTxnUpdate:
      return "update";
    case Event::kTxnInsert:
      return "insert";
    case Event::kTxnDelete:
      return "delete";
    case Event::kTxnScan:
      return "scan";
    case Event::kCertifyBegin:
      return "certify_begin";
    case Event::kCertifyEnd:
      return "certify_end";
    case Event::kLogFlushWaitBegin:
      return "log_flush_wait_begin";
    case Event::kLogFlushWaitEnd:
      return "log_flush_wait_end";
    case Event::kTxnCommit:
      return "commit";
    case Event::kTxnAbort:
      return "abort";
    case Event::kEpochAdvance:
      return "epoch_advance";
    case Event::kGcPassBegin:
      return "gc_pass_begin";
    case Event::kGcPassEnd:
      return "gc_pass_end";
    case Event::kLogFlushBegin:
      return "log_flush_begin";
    case Event::kLogFlushEnd:
      return "log_flush_end";
    case Event::kLogRotation:
      return "log_rotation";
    case Event::kCkptBegin:
      return "ckpt_begin";
    case Event::kCkptCollected:
      return "ckpt_collected";
    case Event::kCkptDataSynced:
      return "ckpt_data_synced";
    case Event::kCkptEnd:
      return "ckpt_end";
    case Event::kSafeSnapshotPublish:
      return "safe_snapshot_publish";
    case Event::kLogStallBegin:
      return "log_stall_begin";
    case Event::kLogStallEnd:
      return "log_stall_end";
    case Event::kLogPoisoned:
      return "log_poisoned";
    case Event::kGovernorLimit:
      return "governor_limit";
    case Event::kWatchdogTrip:
      return "watchdog_trip";
    case Event::kNumEvents:
      break;
  }
  return "unknown";
}

void Configure(TraceMode mode, uint32_t sample_every) {
  if (sample_every == 0) sample_every = 1;
  g_sample_every.store(sample_every, std::memory_order_relaxed);
  g_mode.store(static_cast<uint32_t>(mode), std::memory_order_release);
}

TraceMode Mode() {
  return static_cast<TraceMode>(g_mode.load(std::memory_order_relaxed));
}

bool SampleTxn() {
  switch (Mode()) {
    case TraceMode::kOff:
      return false;
    case TraceMode::kAll:
      return true;
    case TraceMode::kSampled:
      return (t_txn_seq++ %
              g_sample_every.load(std::memory_order_relaxed)) == 0;
  }
  return false;
}

void Emit(Event e, uint64_t txn, uint64_t a, uint64_t b) {
  const uint32_t me = ThreadRegistry::MyId();
  Ring& ring = g_rings[me];
  const uint64_t h = ring.head.load(std::memory_order_relaxed);
  Record& r = ring.records[h & (kRingEvents - 1)];
  r.tsc.store(prof::Cycles(), std::memory_order_relaxed);
  r.a.store(a, std::memory_order_relaxed);
  r.b.store(b, std::memory_order_relaxed);
  r.meta.store(PackMeta(txn & 0xffffffffull, e, me),
               std::memory_order_relaxed);
  // Publication point: a dumper that acquires head sees the stores above.
  ring.head.store(h + 1, std::memory_order_release);
}

uint64_t TotalRecorded() {
  uint64_t sum = 0;
  for (uint32_t i = 0; i < kMaxThreads; ++i) {
    sum += g_rings[i].head.load(std::memory_order_relaxed);
  }
  return sum;
}

uint64_t TotalDropped() {
  uint64_t sum = 0;
  for (uint32_t i = 0; i < kMaxThreads; ++i) {
    const uint64_t h = g_rings[i].head.load(std::memory_order_relaxed);
    if (h > kRingEvents) sum += h - kRingEvents;
  }
  return sum;
}

void ResetForTest() {
  for (uint32_t i = 0; i < kMaxThreads; ++i) {
    g_rings[i].head.store(0, std::memory_order_relaxed);
    for (uint64_t s = 0; s < kRingEvents; ++s) {
      Record& r = g_rings[i].records[s];
      r.tsc.store(0, std::memory_order_relaxed);
      r.a.store(0, std::memory_order_relaxed);
      r.b.store(0, std::memory_order_relaxed);
      r.meta.store(0, std::memory_order_relaxed);
    }
  }
  t_txn_seq = 0;
}

bool DumpToFd(int fd) {
  // Bounded acquisition: a crashed dumper must not wedge the handler.
  for (int spin = 0; g_dump_lock.test_and_set(std::memory_order_acquire);
       ++spin) {
    if (spin > (1 << 22)) return false;
  }
  bool ok = true;

  uint32_t nrings = 0;
  for (uint32_t i = 0; i < kMaxThreads; ++i) {
    if (g_rings[i].head.load(std::memory_order_relaxed) > 0) ++nrings;
  }

  const prof::Calibration& cal = prof::GetCalibration();
  FileHeader fh{};
  fh.magic = kDumpMagic;
  fh.version = kDumpVersion;
  fh.record_size = sizeof(Record);
  fh.ring_events = kRingEvents;
  fh.nrings = nrings;
  fh.cycles_per_ns = cal.cycles_per_ns;
  fh.anchor_tsc = cal.anchor_tsc;
  fh.anchor_unix_ns = cal.anchor_unix_ns;
  ok = ok && WriteAllFd(fd, &fh, sizeof fh);

  for (uint32_t i = 0; ok && i < kMaxThreads; ++i) {
    Ring& ring = g_rings[i];
    const uint64_t h0 = ring.head.load(std::memory_order_acquire);
    if (h0 == 0) continue;
    uint64_t count = h0 < kRingEvents ? h0 : kRingEvents;
    const uint64_t start = h0 - count;
    for (uint64_t k = 0; k < count; ++k) {
      const Record& r = ring.records[(start + k) & (kRingEvents - 1)];
      g_scratch[k].tsc = r.tsc.load(std::memory_order_relaxed);
      g_scratch[k].a = r.a.load(std::memory_order_relaxed);
      g_scratch[k].b = r.b.load(std::memory_order_relaxed);
      g_scratch[k].meta = r.meta.load(std::memory_order_relaxed);
    }
    // The ring's owner may have kept writing during the copy, overwriting
    // the oldest slots we read (possibly mid-record). Trim every snapshot
    // entry whose logical index the writer has since lapped.
    const uint64_t h1 = ring.head.load(std::memory_order_acquire);
    uint64_t first_valid = 0;
    if (h1 > kRingEvents && h1 - kRingEvents > start) {
      first_valid = h1 - kRingEvents - start;
      if (first_valid > count) first_valid = count;
    }
    RingHeader rh{};
    rh.thread = i;
    rh.count = static_cast<uint32_t>(count - first_valid);
    rh.head = h1;
    rh.dropped = h1 - rh.count;
    ok = ok && WriteAllFd(fd, &rh, sizeof rh);
    ok = ok && (rh.count == 0 ||
                WriteAllFd(fd, &g_scratch[first_valid],
                           rh.count * sizeof(PlainRecord)));
  }

  g_dump_lock.clear(std::memory_order_release);
  return ok;
}

Status DumpToFile(const std::string& path) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return Status::IOError("cannot create " + path);
  const bool ok = DumpToFd(fd);
  ::close(fd);
  if (!ok) return Status::IOError("trace dump to " + path + " failed");
  return Status::OK();
}

void InstallCrashHandler(const std::string& path) {
  std::strncpy(g_crash_path, path.c_str(), sizeof g_crash_path - 1);
  g_crash_path[sizeof g_crash_path - 1] = '\0';
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = CrashHandler;
  sigemptyset(&sa.sa_mask);
  // No SA_RESETHAND: the handler resets the disposition itself before
  // re-raising, which also covers a second fatal signal inside the handler.
  const int sigs[] = {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT};
  for (int sig : sigs) {
    ::sigaction(sig, &sa, &g_prev_actions[sig % 32]);
  }
}

void ConfigureSlowTxnSink(uint64_t threshold_us, const std::string& path) {
  std::lock_guard<std::mutex> g(g_slow_mu);
  // Gate first: in-flight captures finish under the mutex below.
  g_slow_threshold_tsc.store(
      threshold_us == 0
          ? 0
          : static_cast<uint64_t>(static_cast<double>(threshold_us) * 1000.0 *
                                  prof::CyclesPerNs()),
      std::memory_order_relaxed);
  if (g_slow_file_owned && g_slow_file != nullptr) std::fclose(g_slow_file);
  g_slow_file = nullptr;
  g_slow_file_owned = false;
  if (threshold_us == 0) return;
  if (!path.empty()) {
    g_slow_file = std::fopen(path.c_str(), "a");
    g_slow_file_owned = (g_slow_file != nullptr);
  }
}

void MaybeCaptureSlowTxn(uint64_t txn, uint64_t begin_tsc, uint64_t end_tsc,
                         const char* scheme) {
  const uint64_t thr = g_slow_threshold_tsc.load(std::memory_order_relaxed);
  if (thr == 0 || end_tsc - begin_tsc < thr) return;
  const double cpn = prof::CyclesPerNs();
  const uint32_t me = ThreadRegistry::MyId();
  const uint32_t txn32 = static_cast<uint32_t>(txn & 0xffffffffull);

  // The capture runs on the ring's own writer thread, so the records below
  // head are stable — no concurrent overwrite is possible.
  Ring& ring = g_rings[me];
  const uint64_t h = ring.head.load(std::memory_order_relaxed);
  const uint64_t count = h < kRingEvents ? h : kRingEvents;
  const uint64_t start = h - count;

  metrics::JsonWriter w;
  w.BeginObject();
  w.Field("txn", txn);
  w.Field("thread", static_cast<uint64_t>(me));
  w.Field("scheme", scheme);
  w.Field("duration_us",
          static_cast<double>(end_tsc - begin_tsc) / cpn / 1000.0);
  // Span durations derived from the paired events (certification and the
  // group-commit wait are the usual suspects for a slow commit).
  double certify_us = 0.0;
  double flush_wait_us = 0.0;
  uint64_t span_start = 0;
  w.Key("events").BeginArray();
  for (uint64_t k = 0; k < count; ++k) {
    const Record& r = ring.records[(start + k) & (kRingEvents - 1)];
    const uint64_t meta = r.meta.load(std::memory_order_relaxed);
    if (static_cast<uint32_t>(meta >> 32) != txn32) continue;
    const Event e = static_cast<Event>((meta >> 16) & 0xffff);
    const uint64_t tsc = r.tsc.load(std::memory_order_relaxed);
    if (tsc < begin_tsc || tsc > end_tsc) continue;  // an older ring pass
    switch (e) {
      case Event::kCertifyBegin:
      case Event::kLogFlushWaitBegin:
        span_start = tsc;
        break;
      case Event::kCertifyEnd:
        if (span_start != 0) certify_us += (tsc - span_start) / cpn / 1000.0;
        span_start = 0;
        break;
      case Event::kLogFlushWaitEnd:
        if (span_start != 0) {
          flush_wait_us += (tsc - span_start) / cpn / 1000.0;
        }
        span_start = 0;
        break;
      default:
        break;
    }
    w.BeginObject();
    w.Field("name", EventName(e));
    w.Field("t_us", static_cast<double>(tsc - begin_tsc) / cpn / 1000.0);
    w.Field("a", r.a.load(std::memory_order_relaxed));
    w.Field("b", r.b.load(std::memory_order_relaxed));
    w.EndObject();
  }
  w.EndArray();
  w.Key("spans").BeginObject();
  w.Field("certify_us", certify_us);
  w.Field("log_flush_wait_us", flush_wait_us);
  w.EndObject();
  w.EndObject();

  std::lock_guard<std::mutex> g(g_slow_mu);
  if (g_slow_threshold_tsc.load(std::memory_order_relaxed) == 0) return;
  FILE* out = g_slow_file != nullptr ? g_slow_file : stderr;
  std::fputs(w.str().c_str(), out);
  std::fputc('\n', out);
  std::fflush(out);
}

}  // namespace trace
}  // namespace ermia
