// Copyright (c) ERMIA reproduction authors. Licensed under the MIT license.
//
// Decoder for flight-recorder binary dumps (trace/trace.h dump format):
// parses the file into a merged, timestamp-ordered event list and renders
// Chrome trace-event JSON loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Library form so tests can round-trip without spawning
// the tools/ermia_trace binary.
#ifndef ERMIA_TRACE_TRACE_READER_H_
#define ERMIA_TRACE_TRACE_READER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "trace/trace.h"

namespace ermia {
namespace trace {

struct DecodedEvent {
  uint64_t tsc = 0;
  uint64_t a = 0;
  uint64_t b = 0;
  uint32_t txn = 0;     // low 32 bits of the TID
  uint32_t thread = 0;  // ThreadRegistry slot
  Event event = Event::kNone;
};

struct TraceDump {
  double cycles_per_ns = 1.0;
  uint64_t anchor_tsc = 0;
  uint64_t anchor_unix_ns = 0;
  uint64_t total_recorded = 0;  // sum of per-ring heads
  uint64_t total_dropped = 0;   // events lost to ring wrap before the dump
  std::vector<uint32_t> threads;       // slots present, ascending
  std::vector<DecodedEvent> events;    // merged across rings, sorted by tsc
};

// Parses a binary dump. Torn records (zero timestamp or out-of-range event
// id, possible when a dump raced the writers) are silently discarded.
Status ReadTraceDump(const std::string& path, TraceDump* out);

// Renders Chrome trace-event JSON ("traceEvents" array format): one track
// per thread, "X" complete-events for paired spans (transactions,
// certification, log-flush waits, GC passes, flusher passes, checkpoints),
// "i" instants for point events, abort reasons carried on flow annotations
// (a "s"→"f" flow from txn begin to its abort, named by AbortReason), and
// rdtsc→ns conversion from the dump header's calibration.
std::string ToChromeTraceJson(const TraceDump& dump);

}  // namespace trace
}  // namespace ermia

#endif  // ERMIA_TRACE_TRACE_READER_H_
