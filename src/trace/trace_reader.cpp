#include "trace/trace_reader.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <unordered_map>

#include "metrics/json.h"
#include "metrics/metrics.h"

namespace ermia {
namespace trace {

namespace {

struct PlainRecord {
  uint64_t tsc, a, b, meta;
};

const char* SchemeShortName(uint64_t scheme) {
  switch (scheme) {
    case 0:
      return "SI";
    case 1:
      return "SI+SSN";
    case 2:
      return "OCC";
    case 3:
      return "2PL";
  }
  return "?";
}

}  // namespace

Status ReadTraceDump(const std::string& path, TraceDump* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);

  FileHeader fh{};
  if (!in.read(reinterpret_cast<char*>(&fh), sizeof fh)) {
    return Status::Corruption("trace dump truncated in header");
  }
  if (fh.magic != kDumpMagic) {
    return Status::Corruption("not a trace dump (bad magic)");
  }
  if (fh.version != kDumpVersion) {
    return Status::NotSupported("trace dump version mismatch");
  }
  if (fh.record_size != sizeof(PlainRecord)) {
    return Status::Corruption("trace dump record size mismatch");
  }

  out->cycles_per_ns = fh.cycles_per_ns > 0.0 ? fh.cycles_per_ns : 1.0;
  out->anchor_tsc = fh.anchor_tsc;
  out->anchor_unix_ns = fh.anchor_unix_ns;
  out->total_recorded = 0;
  out->total_dropped = 0;
  out->threads.clear();
  out->events.clear();

  std::vector<PlainRecord> buf;
  for (uint32_t r = 0; r < fh.nrings; ++r) {
    RingHeader rh{};
    if (!in.read(reinterpret_cast<char*>(&rh), sizeof rh)) {
      return Status::Corruption("trace dump truncated in ring header");
    }
    if (rh.count > fh.ring_events) {
      return Status::Corruption("trace dump ring count out of range");
    }
    out->total_recorded += rh.head;
    out->total_dropped += rh.dropped;
    buf.resize(rh.count);
    if (rh.count > 0 &&
        !in.read(reinterpret_cast<char*>(buf.data()),
                 static_cast<std::streamsize>(rh.count * sizeof(PlainRecord)))) {
      return Status::Corruption("trace dump truncated in ring records");
    }
    bool any = false;
    for (const PlainRecord& pr : buf) {
      const uint16_t raw_event = static_cast<uint16_t>((pr.meta >> 16) & 0xffff);
      // Torn or never-written records (a dump racing the writers): drop.
      if (pr.tsc == 0 || raw_event == 0 ||
          raw_event >= static_cast<uint16_t>(Event::kNumEvents)) {
        continue;
      }
      DecodedEvent e;
      e.tsc = pr.tsc;
      e.a = pr.a;
      e.b = pr.b;
      e.txn = static_cast<uint32_t>(pr.meta >> 32);
      e.thread = rh.thread;
      e.event = static_cast<Event>(raw_event);
      out->events.push_back(e);
      any = true;
    }
    if (any) out->threads.push_back(rh.thread);
  }
  std::sort(out->threads.begin(), out->threads.end());
  std::stable_sort(out->events.begin(), out->events.end(),
                   [](const DecodedEvent& x, const DecodedEvent& y) {
                     return x.tsc < y.tsc;
                   });
  return Status::OK();
}

std::string ToChromeTraceJson(const TraceDump& dump) {
  const double cpn = dump.cycles_per_ns;
  // Time origin: the earliest event (the calibration anchor may postdate
  // early events and negative timestamps render poorly).
  uint64_t t0 = dump.anchor_tsc;
  for (const DecodedEvent& e : dump.events) t0 = std::min(t0, e.tsc);
  auto ts_us = [&](uint64_t tsc) {
    return static_cast<double>(tsc - t0) / cpn / 1000.0;
  };

  metrics::JsonWriter w;
  w.BeginObject();
  w.Key("traceEvents").BeginArray();

  w.BeginObject();
  w.Field("name", "process_name").Field("ph", "M");
  w.Field("pid", uint64_t{1}).Field("tid", uint64_t{0});
  w.Key("args").BeginObject().Field("name", "ermia").EndObject();
  w.EndObject();
  for (uint32_t t : dump.threads) {
    w.BeginObject();
    w.Field("name", "thread_name").Field("ph", "M");
    w.Field("pid", uint64_t{1}).Field("tid", static_cast<uint64_t>(t));
    w.Key("args").BeginObject();
    char buf[32];
    std::snprintf(buf, sizeof buf, "ermia-thread-%u", t);
    w.Field("name", buf);
    w.EndObject();
    w.EndObject();
  }

  auto common = [&](const char* name, const char* cat, const char* ph,
                    double ts, uint32_t tid) {
    w.BeginObject();
    w.Field("name", name).Field("cat", cat).Field("ph", ph);
    w.Field("ts", ts);
    w.Field("pid", uint64_t{1}).Field("tid", static_cast<uint64_t>(tid));
  };
  auto instant = [&](const DecodedEvent& e, const char* cat) {
    common(EventName(e.event), cat, "i", ts_us(e.tsc), e.thread);
    w.Field("s", "t");
    w.Key("args").BeginObject();
    if (e.txn != 0) w.Field("txn", static_cast<uint64_t>(e.txn));
    w.Field("a", e.a).Field("b", e.b);
    w.EndObject();
    w.EndObject();
  };

  // Span pairing state. Transactions key by (thread, txn); the other span
  // kinds are one-at-a-time per thread, keyed by (thread, begin event id).
  std::unordered_map<uint64_t, DecodedEvent> open_txn;
  std::unordered_map<uint64_t, DecodedEvent> open_span;
  auto txn_key = [](const DecodedEvent& e) {
    return (static_cast<uint64_t>(e.thread) << 32) | e.txn;
  };
  auto span_key = [](uint32_t thread, Event begin) {
    return (static_cast<uint64_t>(thread) << 32) |
           static_cast<uint64_t>(begin);
  };
  uint64_t flow_id = 0;

  struct SpanKind {
    Event begin, end;
    const char* name;
    const char* cat;
  };
  static constexpr SpanKind kSpanKinds[] = {
      {Event::kCertifyBegin, Event::kCertifyEnd, "certify", "cc"},
      {Event::kLogFlushWaitBegin, Event::kLogFlushWaitEnd, "log_flush_wait",
       "log"},
      {Event::kGcPassBegin, Event::kGcPassEnd, "gc_pass", "gc"},
      {Event::kLogFlushBegin, Event::kLogFlushEnd, "log_flush", "log"},
      {Event::kCkptBegin, Event::kCkptEnd, "checkpoint", "ckpt"},
      {Event::kLogStallBegin, Event::kLogStallEnd, "log_stall", "health"},
  };
  auto kind_for = [&](Event e, bool* is_begin) -> const SpanKind* {
    for (const SpanKind& k : kSpanKinds) {
      if (e == k.begin) {
        *is_begin = true;
        return &k;
      }
      if (e == k.end) {
        *is_begin = false;
        return &k;
      }
    }
    return nullptr;
  };

  for (const DecodedEvent& e : dump.events) {
    switch (e.event) {
      case Event::kTxnBegin:
        open_txn[txn_key(e)] = e;
        continue;
      case Event::kTxnCommit:
      case Event::kTxnAbort: {
        auto it = open_txn.find(txn_key(e));
        if (it == open_txn.end()) {
          // Begin fell off the ring (wrap) — keep the endpoint visible.
          instant(e, "txn");
          continue;
        }
        const DecodedEvent& b = it->second;
        const bool aborted = e.event == Event::kTxnAbort;
        char name[48];
        std::snprintf(name, sizeof name, "txn %s", SchemeShortName(b.a));
        common(name, "txn", "X", ts_us(b.tsc), e.thread);
        w.Field("dur", ts_us(e.tsc) - ts_us(b.tsc));
        w.Key("args").BeginObject();
        w.Field("txn", static_cast<uint64_t>(e.txn));
        w.Field("scheme", SchemeShortName(b.a));
        w.Key("read_only").Bool(b.b != 0);
        w.Field("outcome", aborted ? "abort" : "commit");
        if (aborted) {
          w.Field("abort_reason",
                  metrics::AbortReasonName(
                      static_cast<metrics::AbortReason>(e.a)));
        }
        w.EndObject();
        w.EndObject();
        if (aborted) {
          // Flow annotation from the begin to the abort, named by reason, so
          // Perfetto draws an arrow across the span carrying the cause.
          char fname[64];
          std::snprintf(fname, sizeof fname, "abort:%s",
                        metrics::AbortReasonName(
                            static_cast<metrics::AbortReason>(e.a)));
          ++flow_id;
          common(fname, "abort", "s", ts_us(b.tsc), e.thread);
          w.Field("id", flow_id);
          w.EndObject();
          common(fname, "abort", "f", ts_us(e.tsc), e.thread);
          w.Field("id", flow_id).Field("bp", "e");
          w.EndObject();
        }
        open_txn.erase(it);
        continue;
      }
      default:
        break;
    }
    bool is_begin = false;
    const SpanKind* kind = kind_for(e.event, &is_begin);
    if (kind != nullptr) {
      const uint64_t key = span_key(e.thread, kind->begin);
      if (is_begin) {
        open_span[key] = e;
        continue;
      }
      auto it = open_span.find(key);
      if (it == open_span.end()) {
        instant(e, kind->cat);
        continue;
      }
      common(kind->name, kind->cat, "X", ts_us(it->second.tsc), e.thread);
      w.Field("dur", ts_us(e.tsc) - ts_us(it->second.tsc));
      w.Key("args").BeginObject();
      if (e.txn != 0) w.Field("txn", static_cast<uint64_t>(e.txn));
      w.Field("a", e.a).Field("b", e.b);
      w.EndObject();
      w.EndObject();
      open_span.erase(it);
      continue;
    }
    switch (e.event) {
      case Event::kTxnRead:
      case Event::kTxnUpdate:
      case Event::kTxnInsert:
      case Event::kTxnDelete:
      case Event::kTxnScan:
        instant(e, "op");
        break;
      case Event::kEpochAdvance:
        instant(e, "epoch");
        break;
      case Event::kLogRotation:
        instant(e, "log");
        break;
      case Event::kCkptCollected:
      case Event::kCkptDataSynced:
        instant(e, "ckpt");
        break;
      case Event::kLogPoisoned:
      case Event::kGovernorLimit:
      case Event::kWatchdogTrip:
        instant(e, "health");
        break;
      default:
        instant(e, "other");
        break;
    }
  }
  // In-flight work at dump time: surface the dangling begins as instants.
  for (const auto& [key, e] : open_txn) {
    (void)key;
    instant(e, "txn");
  }
  for (const auto& [key, e] : open_span) {
    (void)key;
    instant(e, "other");
  }

  w.EndArray();
  w.Field("displayTimeUnit", "ms");
  w.Key("otherData").BeginObject();
  w.Field("cycles_per_ns", dump.cycles_per_ns);
  w.Field("anchor_tsc", dump.anchor_tsc);
  w.Field("anchor_unix_ns", dump.anchor_unix_ns);
  w.Field("total_recorded", dump.total_recorded);
  w.Field("total_dropped", dump.total_dropped);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace trace
}  // namespace ermia
