// Copyright (c) ERMIA reproduction authors. Licensed under the MIT license.
//
// Flight-recorder tracing: always-compiled, run-time-gated per-thread binary
// event rings, in the spirit of Taurus's logging-pipeline telemetry
// (arXiv:2010.06760) and the per-event CC attribution of Larson et al.
// (arXiv:1201.0228).
//
// Design:
//  * One Ring per ThreadRegistry slot. A thread writes only its own ring
//    (single-writer bump, like the metrics shards): the 4 record words are
//    stored relaxed, then the head index is published with a release store.
//    On wrap the oldest record is overwritten; the drop count is derivable
//    as max(0, head - capacity) and is surfaced through the metrics
//    registry as the kTraceEventsDropped gauge.
//  * Records are fixed 32-byte tuples: rdtsc timestamp, two u64 payload
//    words, and a meta word packing txn id (low 32 bits of the TID), event
//    id, and thread slot. Record fields are relaxed atomics so a concurrent
//    dump (DumpTrace from another thread, the metrics gauge walk) is
//    race-free; a dumper re-validates the head afterwards and discards
//    records the writer may have overwritten mid-read.
//  * The recorder is process-global (like prof::g_thread_counters) so the
//    fatal-signal dump path needs no object lookup: DumpToFd() touches only
//    static storage and write(2), making it async-signal-safe.
//  * Gating: Emit() is called behind the caller's own cheap check —
//    transactions carry a `traced_` bool decided once at begin (sampling),
//    daemons check Active(). When trace_mode is off the added cost on hot
//    paths is one predictable branch on a relaxed load or a member bool.
#ifndef ERMIA_TRACE_TRACE_H_
#define ERMIA_TRACE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/macros.h"
#include "common/status.h"
#include "common/sysconf.h"

namespace ermia {
namespace trace {

// Event vocabulary. Paired *Begin/*End events become spans in the Perfetto
// export; the rest render as instants. Appending is free; renumbering
// invalidates old binary dumps (kDumpVersion guards this).
enum class Event : uint16_t {
  kNone = 0,  // zero-initialized slot, never emitted (decoder skip marker)
  // Transaction lifecycle. payloads: begin(a=scheme, b=read_only);
  // read/update/insert/delete(a=table fid, b=oid); scan(a=index fid,
  // b=delivered rows); commit(payloads unused); abort(a=AbortReason).
  kTxnBegin,
  kTxnRead,
  kTxnUpdate,
  kTxnInsert,
  kTxnDelete,
  kTxnScan,
  // Commit certification (SSN exclusion test, OCC validation, 2PL node-set
  // validation; SI has no certification phase and emits neither).
  // payloads: end(a=1 pass, 0 fail).
  kCertifyBegin,
  kCertifyEnd,
  // Synchronous-commit group-commit wait. payloads: a=durable target offset.
  kLogFlushWaitBegin,
  kLogFlushWaitEnd,
  kTxnCommit,
  kTxnAbort,
  // Daemon events. epoch(a=manager tag 0=gc/1=rcu/2=tid, b=new epoch);
  // gc end(a=versions reclaimed); flush(a=batch bytes); rotation(a=segment
  // start offset); checkpoint(a=begin offset).
  kEpochAdvance,
  kGcPassBegin,
  kGcPassEnd,
  kLogFlushBegin,
  kLogFlushEnd,
  kLogRotation,
  kCkptBegin,
  kCkptCollected,
  kCkptDataSynced,
  kCkptEnd,
  // Safe-snapshot daemon (cc/safe_snapshot.h). payloads: a=published safe
  // offset, b=candidates burnt by a poisoning backward edge so far.
  kSafeSnapshotPublish,
  // Graceful degradation. Stall span: begin(a=durable offset at stall,
  // b=errno), end(a=durable offset at resume, b=retries spent). poisoned
  // (a=last durable offset, b=errno) is sticky and emits once. governor
  // limit(a=new writer limit, b=abort rate permille); watchdog trip
  // (a=reason code, b=reason-specific detail, e.g. the stuck offset).
  kLogStallBegin,
  kLogStallEnd,
  kLogPoisoned,
  kGovernorLimit,
  kWatchdogTrip,
  kNumEvents,
};

const char* EventName(Event e);

// 32-byte record. meta packs (txn << 32) | (event << 16) | thread: the txn
// id is truncated to the low 32 bits of the TID, which cannot collide within
// one ring's window (TIDs are dense small integers from the TID table).
struct Record {
  std::atomic<uint64_t> tsc{0};
  std::atomic<uint64_t> a{0};
  std::atomic<uint64_t> b{0};
  std::atomic<uint64_t> meta{0};
};
static_assert(sizeof(Record) == 32, "trace records are fixed 32-byte tuples");

inline constexpr uint64_t PackMeta(uint64_t txn, Event e, uint32_t thread) {
  return (txn << 32) | (static_cast<uint64_t>(e) << 16) |
         static_cast<uint64_t>(thread & 0xffff);
}

// Events per ring; power of two (index masking) and large enough to hold the
// full lifecycle of hundreds of recent transactions per thread. 4096 × 32 B
// × kMaxThreads = 32 MiB of zero-initialized BSS, untouched until traced.
inline constexpr uint64_t kRingEvents = 4096;

struct alignas(kCacheLineSize) Ring {
  // Monotonic count of records ever written; slot = head & (kRingEvents-1).
  // Published with release so a dumper that acquires head sees every record
  // below it fully written.
  std::atomic<uint64_t> head{0};
  char pad[kCacheLineSize - sizeof(std::atomic<uint64_t>)];
  Record records[kRingEvents];
};

// Binary dump format: FileHeader, then one RingHeader + `count` plain
// 32-byte records (oldest first) per non-empty ring.
inline constexpr uint64_t kDumpMagic = 0x43525441494d5245ull;  // "ERMIATRC"
inline constexpr uint32_t kDumpVersion = 1;

struct FileHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t record_size;
  uint32_t ring_events;
  uint32_t nrings;           // RingHeader sections that follow
  double cycles_per_ns;      // prof::CyclesPerNs() (1.0 on non-x86)
  uint64_t anchor_tsc;       // Cycles() at calibration...
  uint64_t anchor_unix_ns;   // ...and CLOCK_REALTIME at the same instant
};

struct RingHeader {
  uint32_t thread;   // ThreadRegistry slot
  uint32_t count;    // records that follow (= min(head, kRingEvents))
  uint64_t head;     // total records ever written by this slot
  uint64_t dropped;  // head - count (overwritten before this dump)
};

// ---- run-time gate ---------------------------------------------------------

// Process-global mode word. Configure is not thread-safe against concurrent
// Emit-ers changing mode semantics mid-txn, but every transition off→on→off
// here is driven by Database::Open/Close, bracketing all traced work.
void Configure(TraceMode mode, uint32_t sample_every);
TraceMode Mode();
inline std::atomic<uint32_t> g_mode{0};  // TraceMode, relaxed fast-path load
inline bool Active() {
  return g_mode.load(std::memory_order_relaxed) !=
         static_cast<uint32_t>(TraceMode::kOff);
}

// Per-thread sampling decision for a new transaction: true if its lifecycle
// should be recorded (always under kAll, 1-in-N under kSampled, never off).
bool SampleTxn();

// ---- recording -------------------------------------------------------------

// Appends one record to the calling thread's ring. Callers gate this on
// Active()/their sampling decision; Emit itself does not re-check the mode.
void Emit(Event e, uint64_t txn, uint64_t a, uint64_t b);

// Process-wide totals across all rings (for the metrics gauges): events ever
// recorded and events lost to ring wrap.
uint64_t TotalRecorded();
uint64_t TotalDropped();

// Zeroes every ring and the sampling counters. Test-only: callers must
// guarantee no concurrent Emit.
void ResetForTest();

// ---- extraction ------------------------------------------------------------

// Writes the binary dump to an open descriptor using only write(2) and
// relaxed atomic loads — async-signal-safe (no allocation, no locks). The
// per-ring snapshot re-reads head after copying and trims records the owner
// may have overwritten during the copy.
bool DumpToFd(int fd);

// Convenience wrapper: create/truncate `path`, DumpToFd, close.
Status DumpToFile(const std::string& path);

// Installs a handler for fatal signals (SEGV, BUS, ILL, FPE, ABRT) that
// dumps the rings to `path` and re-raises with the default disposition, so
// the process still dies with the original signal (the crash harness's
// WTERMSIG checks keep working). `path` is copied into static storage.
void InstallCrashHandler(const std::string& path);

// ---- slow-transaction capture ----------------------------------------------

// Enables capture: committed transactions slower than threshold_us persist
// their event breakdown as one JSON line to `path` (empty = stderr).
// threshold_us == 0 disables. Not thread-safe against in-flight captures;
// called from Database::Open/Close only.
void ConfigureSlowTxnSink(uint64_t threshold_us, const std::string& path);

// Called by Transaction::Finish for traced commits: if end-begin exceeds the
// configured threshold, walks the calling thread's own ring and writes the
// transaction's events (relative-time, named) plus derived span durations as
// a JSON line. `txn` is the full TID; `scheme` a CcSchemeName() string.
void MaybeCaptureSlowTxn(uint64_t txn, uint64_t begin_tsc, uint64_t end_tsc,
                         const char* scheme);

}  // namespace trace
}  // namespace ermia

#endif  // ERMIA_TRACE_TRACE_H_
