#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive suites, built with
# -DERMIA_SANITIZE=thread. The SSN parallel-commit protocol is latch-free, so
# its correctness rests on the memory orderings TSan checks here.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
cmake -B "$BUILD_DIR" -S . -DERMIA_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target \
  cc_ssn_test cc_ssn_parallel_test txn_semantics_test concurrency_test \
  metrics_test trace_test version_alloc_test ssn_readopt_test \
  serializability_stress_test crash_recovery_harness \
  degraded_mode_test governor_test

# tsan.supp waives only the optimistic-lock-coupling reads in the B+-tree
# (benign by protocol: validated against the node version word and retried).
export TSAN_OPTIONS=${TSAN_OPTIONS:-"halt_on_error=1 suppressions=$PWD/tsan.supp"}
for t in cc_ssn_test cc_ssn_parallel_test txn_semantics_test concurrency_test \
         metrics_test trace_test version_alloc_test ssn_readopt_test \
         serializability_stress_test degraded_mode_test governor_test; do
  echo "=== $t (tsan) ==="
  "$BUILD_DIR/tests/$t"
done

# Safe-snapshot / read-opt pass: ERMIA_SSN_READOPT=on flips both read-mostly
# optimizations (docs/INTERNALS.md "Read-mostly optimizations"), so TSan sees
# the snapshot daemon's candidate/drain/publish protocol, the sharded poison
# table, the zero-tracking read-only path, and the compensation scan over the
# per-thread committer index racing real SSN commit traffic. The stress test
# also runs its own differential off/on mix internally; the env override here
# additionally turns the optimizations on for every other scheme's runs and
# for the parallel-commit suite.
for t in cc_ssn_parallel_test serializability_stress_test ssn_readopt_test; do
  echo "=== $t (tsan, ERMIA_SSN_READOPT=on) ==="
  ERMIA_SSN_READOPT=on "$BUILD_DIR/tests/$t"
done

# The concurrency suite again with the slab allocator forced on, so TSan
# covers the transfer-cache Treiber stacks and the epoch-deferred limbo path
# under real cross-thread version traffic (default config already enables
# slab, but the explicit pass keeps coverage if the default ever flips).
for t in cc_ssn_parallel_test concurrency_test version_alloc_test; do
  echo "=== $t (tsan, ERMIA_VERSION_ALLOCATOR=slab) ==="
  ERMIA_VERSION_ALLOCATOR=slab "$BUILD_DIR/tests/$t"
done

# The crash harness forks workload children whose flusher/checkpoint/worker
# threads race against an injected kill — a good TSan target for the
# durability path. A short sweep keeps the wall-clock sane under TSan.
echo "=== crash_recovery_harness (tsan, 8 seeds) ==="
ERMIA_CRASH_SEEDS=8 "$BUILD_DIR/tests/crash_recovery_harness"

# Parallel-replay pass: the same sweep with the partitioned recovery pipeline
# forced wide (dispatcher + 6 install workers), so TSan sees the replay
# queues, the per-partition installs, and the checkpoint/tail barrier under
# real contention even on small CI machines. The harness's differential step
# also re-runs the serial path, so both recovery paths are exercised here.
echo "=== crash_recovery_harness (tsan, parallel replay, 6 workers) ==="
ERMIA_CRASH_SEEDS=8 ERMIA_RECOVERY_THREADS=6 \
  "$BUILD_DIR/tests/crash_recovery_harness"

# The replay pipeline itself, across the full recovery unit suite (both the
# Serial and Parallel4 parameterizations).
cmake --build "$BUILD_DIR" -j --target recovery_test
echo "=== recovery_test (tsan) ==="
"$BUILD_DIR/tests/recovery_test"
