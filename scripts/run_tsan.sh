#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive suites, built with
# -DERMIA_SANITIZE=thread. The SSN parallel-commit protocol is latch-free, so
# its correctness rests on the memory orderings TSan checks here.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-tsan}
cmake -B "$BUILD_DIR" -S . -DERMIA_SANITIZE=thread
cmake --build "$BUILD_DIR" -j --target \
  cc_ssn_test cc_ssn_parallel_test txn_semantics_test concurrency_test \
  metrics_test

# tsan.supp waives only the optimistic-lock-coupling reads in the B+-tree
# (benign by protocol: validated against the node version word and retried).
export TSAN_OPTIONS=${TSAN_OPTIONS:-"halt_on_error=1 suppressions=$PWD/tsan.supp"}
for t in cc_ssn_test cc_ssn_parallel_test txn_semantics_test concurrency_test \
         metrics_test; do
  echo "=== $t (tsan) ==="
  "$BUILD_DIR/tests/$t"
done
