#!/usr/bin/env bash
# Paper-scale reproduction (SIGMOD'16 setup): 30s per data point, thread
# sweep to 24, full-density tables, TPC-C scale = thread count. Expect hours
# on a many-core machine; see EXPERIMENTS.md for what to compare.
set -euo pipefail
cd "$(dirname "$0")/.."
export ERMIA_BENCH_SECONDS=${ERMIA_BENCH_SECONDS:-30}
export ERMIA_BENCH_THREADS=${ERMIA_BENCH_THREADS:-1,6,12,18,24}
export ERMIA_BENCH_DENSITY=${ERMIA_BENCH_DENSITY:-1.0}
export ERMIA_BENCH_SCALE=${ERMIA_BENCH_SCALE:-24}
cmake -B build -G Ninja
cmake --build build
mkdir -p results
for b in build/bench/fig*; do
  name=$(basename "$b")
  echo "=== $name ==="
  "$b" | tee "results/$name.txt"
done
