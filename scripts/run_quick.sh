#!/usr/bin/env bash
# Quick full pass: build, tests, every figure bench, every ablation.
# Total runtime is sized for a small machine (minutes).
# Each bench also writes machine-readable results (engine metrics included)
# to results/<name>.json via the harness's --json flag; google-benchmark
# ablations don't take the flag and run bare.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
mkdir -p results
for b in build/bench/*; do
  name="$(basename "$b")"
  echo "=== $name ==="
  case "$name" in
    abl_epoch|abl_index|abl_indirection|abl_log_manager)
      "$b"
      ;;
    *)
      "$b" --json "results/$name.json"
      ;;
  esac
done
