#!/usr/bin/env bash
# Quick full pass: build, tests, every figure bench, every ablation.
# Total runtime is sized for a small machine (minutes).
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do
  echo "=== $(basename "$b") ==="
  "$b"
done
