#!/usr/bin/env bash
# clang-format gate for the metrics layer (and anything else passed as
# arguments). Exits non-zero if any file needs reformatting; exits 0 with a
# notice when clang-format isn't installed so local runs on minimal boxes
# don't fail (CI installs it).
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 0
fi

files=("$@")
if [ "${#files[@]}" -eq 0 ]; then
  mapfile -t files < <(ls src/metrics/*.h src/metrics/*.cpp)
fi

bad=0
for f in "${files[@]}"; do
  if ! clang-format --dry-run --Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f" >&2
    clang-format --dry-run --Werror "$f" || true
    bad=1
  fi
done
exit "$bad"
