// Fig. 5 + Table 1 (row 1): TPC-C-hybrid as the Q2* footprint grows from 1%
// to 100%. Three panels per the paper: normalized overall throughput,
// normalized Q2* throughput, and Q2* abort ratio. Expected shape: Silo-OCC's
// Q2* commits collapse to ~zero past small footprints with abort ratios
// approaching 100%, while ERMIA's aborts stay low (write-write only) and
// ERMIA-SI stays on top overall; Table 1 gives ERMIA-SI's absolute TPS.
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("fig05_tpcc_hybrid: TPC-C + Q2*, varying Q2* size",
              "Figure 5 (all three panels) + Table 1 (TPC-C-hybrid row)");
  JsonReporter json(argc, argv, "fig05_tpcc_hybrid");
  const double seconds = EnvSeconds(0.5);
  const uint32_t threads = EnvThreads({4}).front();
  const uint32_t scale = EnvScale(std::max(2u, threads));
  const double density = EnvDensity(0.05);
  const std::vector<double> sizes = {0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};

  struct Cell {
    double total_tps, q2_tps, q2_abort;
  };
  std::vector<std::vector<Cell>> grid(kAllSchemes.size());

  for (size_t si = 0; si < kAllSchemes.size(); ++si) {
    for (double size : sizes) {
      BenchOptions options;
      options.threads = threads;
      options.seconds = seconds;
      options.scheme = kAllSchemes[si];
      BenchResult r = RunPoint<tpcc::TpccWorkload>(
          [&] {
            tpcc::TpccConfig cfg;
            cfg.warehouses = scale;
            cfg.density = density;
            tpcc::TpccRunOptions opts;
            opts.hybrid = true;
            opts.q2_fraction = size;
            return std::make_unique<tpcc::TpccWorkload>(cfg, opts);
          },
          options);
      const size_t q2 = TypeIndex(r, "Q2*");
      grid[si].push_back(
          {r.tps(), r.type_tps(q2), r.per_type[q2].abort_ratio()});
      json.Add(std::string(CcSchemeName(kAllSchemes[si])) +
                   "/q2=" + std::to_string(size),
               r);
    }
  }

  auto print_panel = [&](const char* title,
                         const std::function<double(const Cell&)>& f,
                         bool normalize_to_si) {
    std::printf("\n-- %s --\n", title);
    std::printf("%10s %14s %14s %14s\n", "Q2* size", "Silo-OCC", "ERMIA-SI",
                "ERMIA-SSN");
    for (size_t x = 0; x < sizes.size(); ++x) {
      std::printf("%9.0f%%", sizes[x] * 100);
      const double si_val = f(grid[1][x]);  // kAllSchemes[1] == kSi
      for (size_t s = 0; s < kAllSchemes.size(); ++s) {
        const double v = f(grid[s][x]);
        std::printf(" %14.3f", normalize_to_si && si_val > 0 ? v / si_val : v);
      }
      std::printf("\n");
    }
  };
  print_panel("overall throughput (normalized to ERMIA-SI)",
              [](const Cell& c) { return c.total_tps; }, true);
  print_panel("Q2* throughput (normalized to ERMIA-SI)",
              [](const Cell& c) { return c.q2_tps; }, true);
  print_panel("Q2* abort ratio (%)",
              [](const Cell& c) { return c.q2_abort * 100; }, false);

  std::printf("\n-- Table 1 row: absolute overall TPS of ERMIA-SI --\n");
  for (size_t x = 0; x < sizes.size(); ++x) {
    std::printf("%9.0f%%: %10.0f tps\n", sizes[x] * 100, grid[1][x].total_tps);
  }
  return 0;
}
