// Fig. 1: microbenchmark throughput of Silo-OCC vs ERMIA-SI vs ERMIA-SSN at
// two read-set sizes (1K and 10K reads/txn) as the write/read ratio grows
// from 1e-3 to 1e-1. Expected shape: OCC collapses as the write ratio rises
// (commit-time read validation keeps failing against concurrent overwrites);
// SI/SSN degrade gracefully because readers never conflict with writers.
//
// The stock table is static in size, so one loaded database serves every
// (scheme, ratio) point — the CC scheme is a per-transaction property.
#include "bench_util.h"
#include "workloads/micro/micro_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("fig01_microbench: read-mostly txns vs write ratio",
              "Figure 1 (1K reads left, 10K reads right)");
  JsonReporter json(argc, argv, "fig01_microbench");

  const double seconds = EnvSeconds(0.3);
  const uint32_t threads = EnvThreads({4}).front();
  // The paper's Stock table at scale 24 has 2.4M rows; default to a smaller
  // table that still separates the schemes (ERMIA_BENCH_DENSITY scales it).
  const uint32_t rows = std::max<uint32_t>(
      50000, static_cast<uint32_t>(2400000 * EnvDensity(0.1)));
  const std::vector<double> ratios = {0.001, 0.003, 0.01, 0.03, 0.1};

  micro::MicroConfig cfg;
  cfg.table_rows = rows;
  micro::MicroWorkload workload(cfg);
  ScopedDatabase scoped;
  ERMIA_CHECK(scoped.db->Open().ok());
  ERMIA_CHECK(workload.Load(scoped.db).ok());

  for (uint32_t reads : {1000u, 10000u}) {
    std::printf("\n-- read set = %u records, %u threads, %u rows --\n", reads,
                threads, rows);
    std::printf("%10s %14s %14s %14s   (kTps)\n", "wr-ratio", "Silo-OCC",
                "ERMIA-SI", "ERMIA-SSN");
    for (double ratio : ratios) {
      std::printf("%10.3f", ratio);
      for (CcScheme scheme : kAllSchemes) {
        workload.set_write_ratio(ratio);
        workload.set_reads_per_txn(reads);
        BenchOptions options;
        options.threads = threads;
        options.seconds = seconds;
        options.scheme = scheme;
        BenchResult r = RunBench(scoped.db, &workload, options);
        std::printf(" %14.2f", r.tps() / 1000.0);
        std::fflush(stdout);
        json.Add(std::string(CcSchemeName(scheme)) + "/reads=" +
                     std::to_string(reads) + "/wr=" + std::to_string(ratio),
                 r);
      }
      std::printf("\n");
    }
  }
  return 0;
}
