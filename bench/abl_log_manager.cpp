// Ablation: cost of the log manager's design choices (§3.3). Compares the
// single-fetch-add reservation against a mutex-serialized alternative,
// measures reserve+install round trips at several block sizes, and the cost
// of segment rotation.
#include <benchmark/benchmark.h>

#include <mutex>

#include "bench/driver.h"
#include "log/log_manager.h"

namespace {

using namespace ermia;

struct LogFixture {
  LogFixture(uint64_t segment_size = 64ull << 20) {
    config.log_segment_size = segment_size;
    config.log_buffer_size = 1ull << 22;
    bench::ScopedDatabase* unused = nullptr;
    (void)unused;
    char shm_tmpl[] = "/dev/shm/ermia-abl-XXXXXX";
    char tmp_tmpl[] = "/tmp/ermia-abl-XXXXXX";
    char* d = ::mkdtemp(shm_tmpl);
    if (d == nullptr) d = ::mkdtemp(tmp_tmpl);
    dir = d;
    config.log_dir = dir;
    log = std::make_unique<LogManager>(config);
    ERMIA_CHECK(log->Open().ok());
  }
  ~LogFixture() {
    log.reset();
    std::string cmd = "rm -rf '" + dir + "'";
    int rc = std::system(cmd.c_str());
    (void)rc;
  }
  EngineConfig config;
  std::string dir;
  std::unique_ptr<LogManager> log;
};

std::vector<char> MakeBlock(uint64_t offset, uint32_t size) {
  std::vector<char> block(size, 'b');
  LogBlockHeader hdr{};
  hdr.magic = kLogBlockMagic;
  hdr.type = LogBlockType::kTxn;
  hdr.offset = offset;
  hdr.total_size = (size + 31u) & ~31u;
  hdr.payload_bytes = size - sizeof hdr;
  hdr.checksum = LogChecksum(block.data() + sizeof hdr, hdr.payload_bytes);
  std::memcpy(block.data(), &hdr, sizeof hdr);
  return block;
}

// One fetch_add + private serialization + one buffer copy (ERMIA's design).
void BM_ReserveInstall(benchmark::State& state) {
  static LogFixture fixture;
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    Lsn lsn = fixture.log->ReserveBlock(size);
    auto block = MakeBlock(lsn.offset(), size);
    fixture.log->InstallBlock(lsn, block.data(), size);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_ReserveInstall)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Threads(1)->Threads(2)->Threads(4);

// Baseline alternative: a mutex around the whole reservation, emulating a
// classically latched log buffer.
void BM_MutexReserveInstall(benchmark::State& state) {
  static LogFixture fixture;
  static std::mutex mu;
  const uint32_t size = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    std::lock_guard<std::mutex> g(mu);
    Lsn lsn = fixture.log->ReserveBlock(size);
    auto block = MakeBlock(lsn.offset(), size);
    fixture.log->InstallBlock(lsn, block.data(), size);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * size);
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_MutexReserveInstall)->Arg(256)->Threads(1)->Threads(2)->Threads(4);

// Segment rotation: tiny segments force a rotation every few blocks.
void BM_SegmentRotationHeavy(benchmark::State& state) {
  LogFixture fixture(1 << 16);
  const uint32_t size = 4096 + 32;
  for (auto _ : state) {
    Lsn lsn = fixture.log->ReserveBlock(size);
    auto block = MakeBlock(lsn.offset(), size);
    fixture.log->InstallBlock(lsn, block.data(), size);
  }
  state.counters["rotations"] =
      static_cast<double>(fixture.log->segment_rotations());
  state.counters["skips"] = static_cast<double>(fixture.log->skip_blocks());
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_SegmentRotationHeavy);

// Aborted reservations: the skip-record path.
void BM_ReserveSkip(benchmark::State& state) {
  static LogFixture fixture;
  for (auto _ : state) {
    Lsn lsn = fixture.log->ReserveBlock(256);
    fixture.log->InstallSkip(lsn, 256);
  }
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_ReserveSkip)->Threads(1)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
