// Ablation: epoch-integrated slab version allocator (EngineConfig::
// version_allocator = kSlab) vs raw malloc/free (kMalloc). Two quantities:
//
//  1. A version-churn microbenchmark — each thread keeps a sliding window of
//     live versions with chain-like mixed payload sizes and replaces the
//     oldest every iteration, the allocation pattern an update-heavy OLTP
//     worker produces — reported as ns per alloc+free pair.
//  2. End-to-end TPC-C (NewOrder/Payment mix), one fresh database per mode,
//     reported as overall tps and NewOrder tpmC with the slab/malloc delta.
//
// Note: ERMIA_VERSION_ALLOCATOR overrides the per-mode config inside
// Database, so leave it unset when running this binary.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "storage/version.h"
#include "storage/version_alloc.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

constexpr int kWindow = 256;  // live versions per thread (chain depth stand-in)

uint64_t EnvChurnOps() {
  if (const char* env = std::getenv("ERMIA_BENCH_CHURN_OPS")) {
    const uint64_t ops = std::strtoull(env, nullptr, 10);
    if (ops > 0) return ops;
  }
  return 400000;
}

const char* ModeName(VersionAllocMode mode) {
  return mode == VersionAllocMode::kSlab ? "slab" : "malloc";
}

struct ChurnPoint {
  double ns_per_op = 0;
  double mops = 0;
  BenchResult result;
};

// Mixed payload sizes akin to real version chains: keys+small rows dominate,
// with occasional wide rows crossing size classes.
constexpr size_t kPayloadMix[] = {24, 64, 100, 180, 300, 700};

ChurnPoint RunChurn(VersionAllocMode mode, uint32_t threads, uint64_t ops) {
  VersionAllocator::Instance().SetMode(mode);
  std::vector<std::string> payloads;
  for (size_t bytes : kPayloadMix) payloads.emplace_back(bytes, 'v');

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (uint32_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<Version*> window(kWindow, nullptr);
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (uint64_t i = 0; i < ops; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        const size_t slot = (rng >> 33) % kWindow;
        const size_t which = (rng >> 21) % (sizeof(kPayloadMix) / sizeof(size_t));
        if (window[slot] != nullptr) Version::Free(window[slot]);
        window[slot] = Version::Alloc(payloads[which]);
      }
      for (Version* v : window) {
        if (v != nullptr) Version::Free(v);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ChurnPoint p;
  const uint64_t total_ops = ops * threads;
  p.ns_per_op = secs * 1e9 / static_cast<double>(total_ops);
  p.mops = static_cast<double>(total_ops) / secs / 1e6;
  p.result.seconds = secs;
  p.result.threads = threads;
  p.result.type_names = {"alloc_free"};
  p.result.per_type.resize(1);
  p.result.per_type[0].commits = total_ops;
  return p;
}

struct TpccPoint {
  double tps = 0;
  double neworder_tpmc = 0;
  BenchResult result;
};

// RunPoint from bench_util.h uses a default EngineConfig; this variant pins
// the allocator backend per mode.
TpccPoint RunTpcc(VersionAllocMode mode, const BenchOptions& options,
                  uint32_t scale, double density) {
  EngineConfig config;
  config.version_allocator = mode;
  ScopedDatabase scoped(config);
  ERMIA_CHECK(scoped.db->Open().ok());
  tpcc::TpccConfig cfg;
  cfg.warehouses = scale;
  cfg.density = density;
  tpcc::TpccWorkload workload(cfg, tpcc::TpccRunOptions{});
  ERMIA_CHECK(workload.Load(scoped.db).ok());
  TpccPoint p;
  p.result = RunBench(scoped.db, &workload, options);
  p.tps = p.result.tps();
  const size_t no = TypeIndex(p.result, "NewOrder");
  if (no != SIZE_MAX) p.neworder_tpmc = p.result.type_tps(no) * 60.0;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("abl_alloc: slab version allocator vs raw malloc",
              "version allocation ablation (paper §4, memory-optimized "
              "storage; docs/INTERNALS.md epoch-based allocation)");
  JsonReporter json(argc, argv, "abl_alloc");

  if (std::getenv("ERMIA_VERSION_ALLOCATOR") != nullptr) {
    std::printf("\nwarning: ERMIA_VERSION_ALLOCATOR is set; it overrides the "
                "per-mode engine config and the TPC-C comparison below will "
                "run both rows on the same backend.\n");
  }

  const uint32_t threads = EnvThreads({4}).front();
  const uint64_t churn_ops = EnvChurnOps();
  const double seconds = EnvSeconds(0.5);
  const uint32_t scale = EnvScale(std::max(2u, threads));
  const double density = EnvDensity(0.05);
  const std::vector<VersionAllocMode> modes = {VersionAllocMode::kMalloc,
                                               VersionAllocMode::kSlab};

  std::printf("\n-- version churn: %u threads x %llu ops, window %d, "
              "payloads 24..700B --\n",
              threads, static_cast<unsigned long long>(churn_ops), kWindow);
  std::printf("%8s %12s %12s\n", "mode", "ns/op", "Mops/s");
  double churn_ns[2] = {0, 0};
  for (size_t m = 0; m < modes.size(); ++m) {
    ChurnPoint p = RunChurn(modes[m], threads, churn_ops);
    churn_ns[m] = p.ns_per_op;
    std::printf("%8s %12.1f %12.2f\n", ModeName(modes[m]), p.ns_per_op,
                p.mops);
    json.Add(std::string("churn/") + ModeName(modes[m]), p.result);
  }
  if (churn_ns[1] > 0) {
    std::printf("slab speedup over malloc: %.2fx\n",
                churn_ns[0] / churn_ns[1]);
  }

  std::printf("\n-- TPC-C (ERMIA-SI, %u threads, %u warehouses, %.1fs per "
              "point) --\n",
              threads, scale, seconds);
  std::printf("%8s %12s %14s\n", "mode", "tps", "NewOrder-tpmC");
  double tpcc_tps[2] = {0, 0};
  for (size_t m = 0; m < modes.size(); ++m) {
    BenchOptions options;
    options.threads = threads;
    options.seconds = seconds;
    options.scheme = CcScheme::kSi;
    TpccPoint p = RunTpcc(modes[m], options, scale, density);
    tpcc_tps[m] = p.tps;
    std::printf("%8s %12.0f %14.0f\n", ModeName(modes[m]), p.tps,
                p.neworder_tpmc);
    json.Add(std::string("tpcc/") + ModeName(modes[m]), p.result);
  }
  if (tpcc_tps[0] > 0) {
    std::printf("slab tps delta vs malloc: %+.1f%%\n",
                (tpcc_tps[1] - tpcc_tps[0]) / tpcc_tps[0] * 100.0);
  }
  return 0;
}
