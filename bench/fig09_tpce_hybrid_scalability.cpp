// Fig. 9: TPC-E-hybrid thread scaling at AssetEval sizes 10% (left) and 60%
// (right). Expected shape: CC pressure from the long read-mostly transaction
// deteriorates Silo-OCC's scaling — and more so at the larger footprint —
// while ERMIA keeps scaling thanks to its robust CC and scalable physical
// layer.
#include "bench_util.h"
#include "workloads/tpce/tpce_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

void RunSize(double size, double seconds, const std::vector<uint32_t>& threads,
             double density, JsonReporter* json) {
  std::printf("\n-- TPC-E-hybrid, AssetEval size %.0f%% --\n", size * 100);
  std::printf("%8s %14s %14s %14s   (kTps)\n", "threads", "Silo-OCC",
              "ERMIA-SI", "ERMIA-SSN");
  for (uint32_t n : threads) {
    std::printf("%8u", n);
    for (CcScheme scheme : kAllSchemes) {
      BenchOptions options;
      options.threads = n;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunPoint<tpce::TpceWorkload>(
          [&] {
            tpce::TpceConfig cfg;
            cfg.density = density;
            tpce::TpceRunOptions opts;
            opts.hybrid = true;
            opts.asset_eval_size = size;
            return std::make_unique<tpce::TpceWorkload>(cfg, opts);
          },
          options);
      std::printf(" %14.3f", r.tps() / 1000.0);
      json->Add(std::string(CcSchemeName(scheme)) + "/ae=" +
                    std::to_string(size) + "/threads=" + std::to_string(n),
                r);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader(
      "fig09_tpce_hybrid_scalability: scaling under heavy read-mostly txns",
      "Figure 9 (10% AssetEval left, 60% AssetEval right)");
  JsonReporter json(argc, argv, "fig09_tpce_hybrid_scalability");
  const double seconds = EnvSeconds(0.4);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const double density = EnvDensity(0.05);
  RunSize(0.10, seconds, threads, density, &json);
  RunSize(0.60, seconds, threads, density, &json);
  return 0;
}
