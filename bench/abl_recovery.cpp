// Ablation: partitioned parallel log replay (EngineConfig::recovery_threads)
// vs the legacy serial scan. Generates a log of ERMIA_BENCH_LOG_MB megabytes
// (default 16; set 1024+ for paper-scale runs), then reopens the same
// directory once per worker count and times Database::Recover(). Replay is
// reported as GB/s over the bytes the recovery actually scanned
// (metrics: recovery_replay_bytes), plus the speedup against the serial
// pass. Since a clean Close() writes nothing and Recover() only rebuilds
// in-memory state, every pass replays the identical log.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

constexpr int kRows = 4096;
constexpr int kOpsPerTxn = 8;
constexpr size_t kValueSize = 256;

uint64_t EnvLogMb() {
  if (const char* env = std::getenv("ERMIA_BENCH_LOG_MB")) {
    const uint64_t mb = std::strtoull(env, nullptr, 10);
    if (mb > 0) return mb;
  }
  return 16;
}

std::string KeyFor(int row) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "k%06d", row);
  return buf;
}

// Fills `dir` with roughly `target_mb` of update-heavy log. Two writer
// threads on disjoint row stripes, asynchronous commit: generation speed is
// not the quantity under test.
void GenerateLog(const std::string& dir, uint64_t target_mb) {
  EngineConfig config;
  config.log_dir = dir;
  config.synchronous_commit = false;
  Database db(config);
  Table* table = db.CreateTable("kv");
  Index* pk = db.CreateIndex(table, "kv_pk");
  ERMIA_CHECK(db.Open().ok());

  std::vector<Oid> oids(kRows);
  const std::string value(kValueSize, 'v');
  for (int r = 0; r < kRows; ++r) {
    Transaction txn(&db, CcScheme::kSi);
    ERMIA_CHECK(txn.Insert(table, pk, KeyFor(r), value, &oids[r]).ok());
    ERMIA_CHECK(txn.Commit().ok());
  }

  const uint64_t target_bytes = target_mb << 20;
  // value + record header + block header amortized: used only to pace the
  // "are we there yet" checks, not as ground truth.
  const uint64_t approx_txn_bytes = kOpsPerTxn * (kValueSize + 64);
  const uint64_t txns_per_check =
      1 + target_bytes / (64 * approx_txn_bytes);
  std::atomic<bool> done{false};
  auto writer = [&](int stripe) {
    uint64_t rng = 0x9e3779b97f4a7c15ull * (stripe + 1);
    while (!done.load(std::memory_order_acquire)) {
      for (uint64_t i = 0; i < txns_per_check; ++i) {
        Transaction txn(&db, CcScheme::kSi);
        bool ok = true;
        for (int op = 0; op < kOpsPerTxn; ++op) {
          rng = rng * 6364136223846793005ull + 1442695040888963407ull;
          const int row = static_cast<int>((rng >> 33) % (kRows / 2)) +
                          stripe * (kRows / 2);
          if (!txn.Update(table, oids[row], value).ok()) {
            ok = false;
            break;
          }
        }
        if (!ok) {
          txn.Abort();
          continue;
        }
        ERMIA_CHECK(txn.Commit().ok());
      }
      if (stripe == 0 && db.log().CurrentOffset() >= target_bytes) {
        done.store(true, std::memory_order_release);
      }
    }
    ThreadRegistry::Deregister();
  };
  std::thread t0(writer, 0), t1(writer, 1);
  t0.join();
  t1.join();
}

struct RecoveryPoint {
  double seconds = 0;
  uint64_t bytes = 0;
  uint64_t records = 0;
  BenchResult result;
};

RecoveryPoint RecoverOnce(const std::string& dir, uint32_t workers) {
  EngineConfig config;
  config.log_dir = dir;
  config.recovery_threads = workers;
  Database db(config);
  Table* table = db.CreateTable("kv");
  (void)db.CreateIndex(table, "kv_pk");
  ERMIA_CHECK(db.Open().ok());

  const auto t0 = std::chrono::steady_clock::now();
  ERMIA_CHECK(db.Recover().ok());
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  RecoveryPoint p;
  p.seconds = secs;
  const metrics::MetricsSnapshot snap = db.SnapshotMetrics();
  p.bytes = snap.counter(metrics::Ctr::kRecoveryReplayBytes);
  p.records = snap.counter(metrics::Ctr::kRecoveryReplayRecords);
  p.result.seconds = secs;
  p.result.threads = workers;
  p.result.recovery_ms = secs * 1000.0;
  p.result.engine = snap;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("abl_recovery: partitioned parallel log replay vs serial scan",
              "recovery pipeline ablation (paper §3.7, log-is-the-database)");
  JsonReporter json(argc, argv, "abl_recovery");

  const uint64_t log_mb = EnvLogMb();
  const std::vector<uint32_t> workers = EnvThreads({1, 2, 4, 8});

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\nhardware threads: %u, target log: %llu MB "
              "(ERMIA_BENCH_LOG_MB)\n",
              hw, static_cast<unsigned long long>(log_mb));
  if (hw <= 1) {
    std::printf("note: replay workers only beat the serial scan with real\n"
                "parallelism; on a single hardware thread the pipeline adds\n"
                "queue overhead and the speedup column will hover near 1x.\n"
                "The >=3x-at-8-workers claim needs an 8+ core machine and a\n"
                "1GB+ log (ERMIA_BENCH_LOG_MB=1024).\n");
  }

  // Generation directory: tmpfs when available, as the paper stores the log.
  char shm_tmpl[] = "/dev/shm/ermia-ablrec-XXXXXX";
  char tmp_tmpl[] = "/tmp/ermia-ablrec-XXXXXX";
  char* d = ::mkdtemp(shm_tmpl);
  if (d == nullptr) d = ::mkdtemp(tmp_tmpl);
  ERMIA_CHECK(d != nullptr);
  const std::string dir = d;

  std::printf("\ngenerating %llu MB update log (%d rows, %d ops/txn, %zuB "
              "values)...\n",
              static_cast<unsigned long long>(log_mb), kRows, kOpsPerTxn,
              kValueSize);
  GenerateLog(dir, log_mb);

  std::printf("\n%8s %12s %12s %12s %10s\n", "workers", "recover-ms",
              "replay-GB/s", "records", "speedup");
  double serial_secs = 0;
  double last_speedup = 0;
  for (uint32_t w : workers) {
    RecoveryPoint p = RecoverOnce(dir, w);
    if (w == workers.front()) serial_secs = p.seconds;
    const double gbps =
        p.seconds > 0 ? static_cast<double>(p.bytes) / p.seconds / 1e9 : 0.0;
    last_speedup = p.seconds > 0 ? serial_secs / p.seconds : 0.0;
    std::printf("%8u %12.1f %12.3f %12llu %9.2fx\n", w, p.seconds * 1000.0,
                gbps, static_cast<unsigned long long>(p.records),
                last_speedup);
    json.Add("replay/workers=" + std::to_string(w), p.result);
  }
  std::printf("\nspeedup at max workers: %.2fx\n", last_speedup);

  std::string cmd = "rm -rf '" + dir + "'";
  int rc = std::system(cmd.c_str());
  (void)rc;
  return 0;
}
