// Ablation: cost of the always-on metrics layer. Runs the same write-heavy
// microbenchmark with the sharded counters live and with
// SetSuppressedForAblation(true), which keeps every instrumentation branch in
// place but skips the shard writes (the branch itself is part of the measured
// cost either way). Acceptance: metrics-on throughput within ~2% of
// suppressed; the per-thread shards make increments plain cache-local stores,
// so the gap should be noise.
#include <algorithm>

#include "bench_util.h"
#include "metrics/metrics.h"
#include "workloads/micro/micro_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("abl_metrics_overhead: sharded metrics on vs suppressed",
              "DESIGN.md ablation (observability layer)");
  JsonReporter json(argc, argv, "abl_metrics_overhead");

  const double seconds = EnvSeconds(0.5);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});

  // Small read sets + frequent writes maximize the metrics-to-work ratio:
  // every operation and every commit touches the counters, so any per-event
  // cost shows up here before it would in a realistic mix. One database
  // serves every sample — reloading between runs would swamp the measured
  // effect with allocator/page-cache state differences.
  micro::MicroConfig cfg;
  cfg.table_rows = 100000;
  cfg.reads_per_txn = 4;
  cfg.write_ratio = 0.5;
  micro::MicroWorkload workload(cfg);
  ScopedDatabase scoped;
  ERMIA_CHECK(scoped.db->Open().ok());
  ERMIA_CHECK(workload.Load(scoped.db).ok());

  auto run = [&](bool suppressed, uint32_t t) {
    metrics::SetSuppressedForAblation(suppressed);
    BenchOptions options;
    options.threads = t;
    options.seconds = seconds;
    options.scheme = CcScheme::kSi;
    BenchResult r = RunBench(scoped.db, &workload, options);
    metrics::SetSuppressedForAblation(false);
    return r;
  };

  std::printf("\nmicro (100K rows, 4 reads + 50%% writes), ERMIA-SI\n");
  std::printf("%8s %16s %16s %10s\n", "threads", "suppressed-kTps",
              "metrics-kTps", "overhead");

  // The true per-event cost (a handful of cache-local stores per txn) is far
  // below a shared box's run-to-run noise, so a single A/B pair is dominated
  // by warm-up and drift no matter the order. Instead: several back-to-back
  // pairs, the within-pair order alternating each repetition (AB, BA, AB,
  // ...) so monotone drift cancels, and the reported overhead is the median
  // of the per-pair ratios — paired samples sit ~one run apart in time, the
  // scale where drift is smallest. A throwaway round absorbs the cold start.
  constexpr int kReps = 5;
  run(/*suppressed=*/true, threads.front());
  for (uint32_t t : threads) {
    std::vector<double> ratios;  // on/off per pair
    std::vector<double> off_tps, on_tps;
    BenchResult off, on;
    for (int rep = 0; rep < kReps; ++rep) {
      BenchResult o, m;
      if (rep % 2 == 0) {
        o = run(/*suppressed=*/true, t);
        m = run(/*suppressed=*/false, t);
      } else {
        m = run(/*suppressed=*/false, t);
        o = run(/*suppressed=*/true, t);
      }
      if (o.tps() > 0) ratios.push_back(m.tps() / o.tps());
      off_tps.push_back(o.tps());
      on_tps.push_back(m.tps());
      off = std::move(o);
      on = std::move(m);
    }
    std::sort(ratios.begin(), ratios.end());
    std::sort(off_tps.begin(), off_tps.end());
    std::sort(on_tps.begin(), on_tps.end());
    const double overhead =
        ratios.empty() ? 0.0 : 100.0 * (1.0 - ratios[ratios.size() / 2]);
    std::printf("%8u %16.2f %16.2f %9.2f%%\n", t,
                off_tps[kReps / 2] / 1000.0, on_tps[kReps / 2] / 1000.0,
                overhead);
    json.Add("suppressed/threads=" + std::to_string(t), off);
    json.Add("metrics/threads=" + std::to_string(t), on);
  }
  return 0;
}
