// Fig. 11: per-transaction cycle breakdown of ERMIA-SI running TPC-C, by
// component: index (Masstree in the paper, the OLC B+-tree here),
// indirection arrays, log manager, epoch managers, and everything else.
// Expected shape: the index dominates (~40% in the paper), indirection costs
// double-digit %, the log manager holds steady at ~8-9% across thread
// counts, and the epoch managers are negligible (<1%) — i.e., the building
// blocks stay scalable as parallelism grows.
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("fig11_cycle_breakdown: cycles per txn by component (ERMIA-SI)",
              "Figure 11");
  JsonReporter json(argc, argv, "fig11_cycle_breakdown");
  const double seconds = EnvSeconds(0.4);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const double density = EnvDensity(0.05);

  std::printf("%8s %12s %12s %12s %12s %12s %12s\n", "threads", "total(K)",
              "index(K)", "indir(K)", "log(K)", "epoch(K)", "other(K)");
  for (uint32_t n : threads) {
    BenchOptions options;
    options.threads = n;
    options.seconds = seconds;
    options.scheme = CcScheme::kSi;
    options.profile = true;
    BenchResult r = RunPoint<tpcc::TpccWorkload>(
        [&] {
          tpcc::TpccConfig cfg;
          cfg.warehouses = std::max(1u, EnvScale(n));
          cfg.density = density;
          return std::make_unique<tpcc::TpccWorkload>(cfg,
                                                      tpcc::TpccRunOptions{});
        },
        options);
    json.Add("si/threads=" + std::to_string(n), r);
    const double txns =
        std::max<uint64_t>(1, r.prof.transactions);
    const double total = static_cast<double>(r.prof.total_cycles) / txns;
    const double index = static_cast<double>(r.prof.index_cycles) / txns;
    const double indir = static_cast<double>(r.prof.indirection_cycles) / txns;
    const double log = static_cast<double>(r.prof.log_cycles) / txns;
    const double epoch = static_cast<double>(r.prof.epoch_cycles) / txns;
    const double other = total - index - indir - log - epoch;
    std::printf("%8u %12.1f %12.1f %12.1f %12.1f %12.2f %12.1f\n", n,
                total / 1000, index / 1000, indir / 1000, log / 1000,
                epoch / 1000, other / 1000);
    std::printf("%8s %12s %11.0f%% %11.0f%% %11.0f%% %11.1f%% %11.0f%%\n", "",
                "", 100 * index / total, 100 * indir / total,
                100 * log / total, 100 * epoch / total, 100 * other / total);
  }
  return 0;
}
