// Fig. 10: ERMIA-SI on TPC-C with per-transaction logging (one round trip to
// the central log buffer at pre-commit) vs emulated per-operation (WAL-style)
// logging. Expected shape: per-transaction logging scales; per-operation
// logging does not — each update pays a global fetch_add plus a buffer copy,
// multiplying pressure on the centralized log.
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

BenchResult RunLogMode(bool per_op, uint32_t threads, double seconds,
                       double density) {
  EngineConfig config;
  config.log_per_operation = per_op;
  ScopedDatabase scoped(config);
  ERMIA_CHECK(scoped.db->Open().ok());
  tpcc::TpccConfig cfg;
  cfg.warehouses = std::max(1u, EnvScale(threads));
  cfg.density = density;
  tpcc::TpccWorkload workload(cfg, tpcc::TpccRunOptions{});
  ERMIA_CHECK(workload.Load(scoped.db).ok());
  BenchOptions options;
  options.threads = threads;
  options.seconds = seconds;
  options.scheme = CcScheme::kSi;
  return RunBench(scoped.db, &workload, options);
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("fig10_logging: per-transaction vs per-operation logging",
              "Figure 10 (ERMIA-SI running TPC-C)");
  JsonReporter json(argc, argv, "fig10_logging");
  const double seconds = EnvSeconds(0.4);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const double density = EnvDensity(0.05);

  std::printf("%8s %14s %14s   (kTps)\n", "threads", "Per-TX", "Per-OP");
  for (uint32_t n : threads) {
    BenchResult per_tx = RunLogMode(false, n, seconds, density);
    BenchResult per_op = RunLogMode(true, n, seconds, density);
    std::printf("%8u %14.2f %14.2f\n", n, per_tx.tps() / 1000.0,
                per_op.tps() / 1000.0);
    json.Add("per_tx/threads=" + std::to_string(n), per_tx);
    json.Add("per_op/threads=" + std::to_string(n), per_op);
  }
  return 0;
}
