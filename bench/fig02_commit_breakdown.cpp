// Fig. 2: per-transaction-type commit rates for plain TPC-C (left) and
// TPC-C + Q2* at 10% size (right). Expected shape: comparable commit rates
// across schemes on plain TPC-C; with Q2* in the mix, Silo-OCC commits almost
// no Q2* transactions (reader starvation) while ERMIA keeps Q2*'s commit rate
// high, and overall TPS drops far more under OCC (wasted cycles on doomed
// long readers).
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

void RunMix(bool hybrid, double seconds, uint32_t threads, uint32_t scale,
            double density, JsonReporter* json) {
  std::printf("\n-- %s (W=%u, %u threads) --\n",
              hybrid ? "TPC-C + Q2* (10% size)" : "TPC-C", scale, threads);
  std::vector<BenchResult> results;
  for (CcScheme scheme : kAllSchemes) {
    BenchOptions options;
    options.threads = threads;
    options.seconds = seconds;
    options.scheme = scheme;
    results.push_back(RunPoint<tpcc::TpccWorkload>(
        [&] {
          tpcc::TpccConfig cfg;
          cfg.warehouses = scale;
          cfg.density = density;
          tpcc::TpccRunOptions opts;
          opts.hybrid = hybrid;
          opts.q2_fraction = 0.1;
          return std::make_unique<tpcc::TpccWorkload>(cfg, opts);
        },
        options));
    json->Add(std::string(hybrid ? "hybrid/" : "plain/") +
                  CcSchemeName(scheme),
              results.back());
  }
  std::printf("%-12s %14s %14s %14s   (commits/s)\n", "txn type", "Silo-OCC",
              "ERMIA-SI", "ERMIA-SSN");
  for (size_t t = 0; t < results[0].type_names.size(); ++t) {
    std::printf("%-12s", results[0].type_names[t].c_str());
    for (const auto& r : results) std::printf(" %14.0f", r.type_tps(t));
    std::printf("\n");
  }
  std::printf("%-12s", "TOTAL");
  for (const auto& r : results) std::printf(" %14.0f", r.tps());
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("fig02_commit_breakdown: commit rate per TPC-C txn type",
              "Figure 2 (TPC-C left, TPC-C + Q2* right)");
  JsonReporter json(argc, argv, "fig02_commit_breakdown");
  const double seconds = EnvSeconds(0.5);
  const uint32_t threads = EnvThreads({4}).front();
  const uint32_t scale = EnvScale(std::max(2u, threads));
  const double density = EnvDensity(0.05);
  RunMix(false, seconds, threads, scale, density, &json);
  RunMix(true, seconds, threads, scale, density, &json);
  return 0;
}
