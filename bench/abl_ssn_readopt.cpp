// Ablation: SSN read-mostly optimizations (safe-snapshot read-only
// transactions + old-version read exemption, docs/INTERNALS.md "Read-mostly
// optimizations"). Three phases:
//
//   1. Correctness gate on a declared-read-only mix (YCSB-C): with
//      ssn_safe_snapshot on, every transaction must take the zero-tracking
//      safe-snapshot path — zero reader-bitmap RMWs, zero aborts. Enforced
//      with hard checks, not just printed.
//   2. Read-mostly YCSB-B A/B: optimizations off vs on, same mix.
//   3. The paper's heterogeneous mixes: TPC-C-hybrid (Q2*) and TPC-E-hybrid
//      (AssetEval) A/B, where the long read-mostly transactions are the ones
//      the bitmap-RMW traffic hurts.
#include <thread>

#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"
#include "workloads/tpce/tpce_workload.h"
#include "workloads/ycsb/ycsb_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

EngineConfig MakeConfig(bool optimized) {
  EngineConfig config;
  config.ssn_safe_snapshot = optimized;
  config.ssn_read_opt = optimized;
  return config;
}

// RunPoint can't carry an EngineConfig, so the A/B points build their own
// database: load, let the safe-snapshot LSN catch up to the loaded state
// (readers born before the first publication would see an empty database),
// then run.
template <typename WorkloadT>
BenchResult RunMode(bool optimized, WorkloadT* workload,
                    const BenchOptions& options) {
  ScopedDatabase scoped(MakeConfig(optimized));
  ERMIA_CHECK(scoped.db->Open().ok());
  ERMIA_CHECK(workload->Load(scoped.db).ok());
  const uint64_t tail = scoped.db->log().CurrentOffset();
  while (scoped.db->safe_snapshot_offset() < tail) {
    scoped.db->safesnap().Tick(scoped.db->gc_epoch(),
                               scoped.db->log().CurrentOffset());
    // A round stalls while any epoch straggler (e.g. the GC daemon mid-pass)
    // is pinned below the candidate's mark; yield so it can finish.
    std::this_thread::yield();
  }
  return RunBench(scoped.db, workload, options);
}

void PrintAb(const char* label, const BenchResult& off, const BenchResult& on) {
  const double ratio = off.tps() > 0 ? on.tps() / off.tps() : 0.0;
  std::printf("%-24s %14.2f %14.2f %9.2fx\n", label, off.tps() / 1000.0,
              on.tps() / 1000.0, ratio);
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("abl_ssn_readopt: SSN safe snapshots + old-version exemption",
              "DESIGN.md ablation (paper §3.6, read-mostly SSN)");
  JsonReporter json(argc, argv, "abl_ssn_readopt");

  const double seconds = EnvSeconds(0.3);
  const uint32_t threads = EnvThreads({4}).front();
  const uint32_t scale = EnvScale(std::max(2u, threads));
  const double density = EnvDensity(0.05);

  BenchOptions options;
  options.threads = threads;
  options.seconds = seconds;
  options.scheme = CcScheme::kSiSsn;

  std::printf("\n%-24s %14s %14s %10s\n", "mix", "off-kTps", "on-kTps",
              "ratio");

  // ---- phase 1: declared-read-only gate + A/B ----------------------------
  // Off: declared-RO SSN transactions still track every read (reader slot,
  // bitmap fetch_or per version, read set). On: zero-tracking safe-snapshot
  // path. Zipfian keys make the off-side bitmap RMWs contend on the same hot
  // cache lines, which is exactly the traffic the optimization removes.
  {
    BenchResult ab[2];
    for (const bool optimized : {false, true}) {
      ycsb::YcsbConfig cfg;
      cfg.records = 50000;
      cfg.mix = ycsb::YcsbMix::kC;
      ycsb::YcsbWorkload workload(cfg);
      ab[optimized] = RunMode(optimized, &workload, options);
      json.Add(std::string("ycsb_c/") + (optimized ? "on" : "off"),
               ab[optimized]);
    }
    PrintAb("YCSB-C (100% read)", ab[0], ab[1]);
    const BenchResult& r = ab[1];
    const uint64_t safesnap_txns =
        r.engine.counter(metrics::Ctr::kSsnSafesnapTxns);
    const uint64_t bitmap_rmws =
        r.engine.counter(metrics::Ctr::kSsnBitmapAdvertises);
    std::printf("  on-side: %llu safe-snapshot txns, %llu bitmap RMWs, "
                "%llu aborts\n",
                (unsigned long long)safesnap_txns,
                (unsigned long long)bitmap_rmws,
                (unsigned long long)r.total_aborts());
    // Acceptance: every declared-RO SSN transaction rides the safe snapshot,
    // advertises nothing, and can never abort.
    ERMIA_CHECK(safesnap_txns >= r.total_commits());
    ERMIA_CHECK(bitmap_rmws == 0);
    ERMIA_CHECK(r.total_aborts() == 0);
  }

  // ---- phase 2: read-mostly YCSB-B ---------------------------------------
  {
    BenchResult ab[2];
    for (const bool optimized : {false, true}) {
      ycsb::YcsbConfig cfg;
      cfg.records = 50000;
      cfg.mix = ycsb::YcsbMix::kB;
      ycsb::YcsbWorkload workload(cfg);
      ab[optimized] = RunMode(optimized, &workload, options);
      json.Add(std::string("ycsb_b/") + (optimized ? "on" : "off"),
               ab[optimized]);
    }
    PrintAb("YCSB-B (95/5)", ab[0], ab[1]);
  }

  // ---- phase 3: heterogeneous hybrid mixes -------------------------------
  {
    BenchResult ab[2];
    for (const bool optimized : {false, true}) {
      tpcc::TpccConfig cfg;
      cfg.warehouses = scale;
      cfg.density = density;
      tpcc::TpccRunOptions opts;
      opts.hybrid = true;
      opts.q2_fraction = 0.2;
      tpcc::TpccWorkload workload(cfg, opts);
      ab[optimized] = RunMode(optimized, &workload, options);
      json.Add(std::string("tpcch/") + (optimized ? "on" : "off"),
               ab[optimized]);
    }
    PrintAb("TPC-C-hybrid (Q2* 20%)", ab[0], ab[1]);
  }
  {
    BenchResult ab[2];
    for (const bool optimized : {false, true}) {
      tpce::TpceConfig cfg;
      cfg.density = density;
      tpce::TpceRunOptions opts;
      opts.hybrid = true;
      opts.asset_eval_size = 0.2;
      tpce::TpceWorkload workload(cfg, opts);
      ab[optimized] = RunMode(optimized, &workload, options);
      json.Add(std::string("tpceh/") + (optimized ? "on" : "off"),
               ab[optimized]);
    }
    PrintAb("TPC-E-hybrid (AE 20%)", ab[0], ab[1]);
  }

  std::printf("\nnote: 'on' = ssn_safe_snapshot + ssn_read_opt "
              "(ERMIA_SSN_READOPT=on)\n");
  return 0;
}
