// Ablation: OLC B+-tree throughput — point lookups, inserts, scans, and
// mixed read/write, single- and multi-threaded (the index is Fig. 11's
// largest component, so its constants matter).
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/key_encoder.h"
#include "common/random.h"
#include "index/btree.h"

namespace {

using namespace ermia;

constexpr uint64_t kPreload = 100000;

BTree* SharedTree() {
  static BTree tree;
  static bool loaded = [] {
    NodeHandle nh;
    for (uint64_t i = 0; i < kPreload; ++i) {
      tree.Insert(KeyEncoder().U64(i).slice(), static_cast<Oid>(i + 1), &nh,
                  nullptr);
    }
    return true;
  }();
  (void)loaded;
  return &tree;
}

void BM_Lookup(benchmark::State& state) {
  BTree* tree = SharedTree();
  FastRandom rng(state.thread_index() + 1);
  NodeHandle nh;
  for (auto _ : state) {
    Oid oid = 0;
    benchmark::DoNotOptimize(tree->Lookup(
        KeyEncoder().U64(rng.UniformU64(0, kPreload - 1)).slice(), &oid, &nh));
  }
}
BENCHMARK(BM_Lookup)->Threads(1)->Threads(2)->Threads(4);

void BM_Insert(benchmark::State& state) {
  static BTree tree;
  static std::atomic<uint64_t> next{0};
  NodeHandle nh;
  for (auto _ : state) {
    const uint64_t k = next.fetch_add(1, std::memory_order_relaxed);
    tree.Insert(KeyEncoder().U64(k).slice(), static_cast<Oid>(k + 1), &nh,
                nullptr);
  }
}
BENCHMARK(BM_Insert)->Threads(1)->Threads(2)->Threads(4);

void BM_Scan100(benchmark::State& state) {
  BTree* tree = SharedTree();
  FastRandom rng(7);
  for (auto _ : state) {
    const uint64_t from = rng.UniformU64(0, kPreload - 200);
    size_t n = 0;
    tree->Scan(
        KeyEncoder().U64(from).slice(), KeyEncoder().U64(from + 99).slice(),
        [&](const Slice&, Oid) {
          ++n;
          return true;
        },
        nullptr);
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 100);
}
BENCHMARK(BM_Scan100);

void BM_MixedReadInsert(benchmark::State& state) {
  static BTree tree;
  static std::atomic<uint64_t> next{1u << 20};
  FastRandom rng(state.thread_index() + 3);
  NodeHandle nh;
  for (auto _ : state) {
    if (rng.Bernoulli(0.2)) {
      const uint64_t k = next.fetch_add(1, std::memory_order_relaxed);
      tree.Insert(KeyEncoder().U64(k).slice(), static_cast<Oid>(k), &nh,
                  nullptr);
    } else {
      Oid oid = 0;
      const uint64_t hi = next.load(std::memory_order_relaxed);
      benchmark::DoNotOptimize(tree.Lookup(
          KeyEncoder().U64((1u << 20) + rng.UniformU64(0, hi - (1u << 20)))
              .slice(),
          &oid, &nh));
    }
  }
}
BENCHMARK(BM_MixedReadInsert)->Threads(1)->Threads(2)->Threads(4);

}  // namespace

BENCHMARK_MAIN();
