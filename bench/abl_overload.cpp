// Ablation: graceful degradation under overload and log failure
// (docs/INTERNALS.md "Degraded modes & overload protection"). Two phases:
//
//   1. Abort-storm governor A/B: a 100%-hotspot write mix (every transaction
//      RMWs the same row, holding the read-to-write window open) swept over
//      offered writer threads, governor off vs on. The interesting quantity
//      is goodput (committed tps) and the abort ratio the governor trades it
//      against; with the governor on, the AIMD gate sheds concurrent writers
//      when the abort rate spikes.
//   2. ENOSPC stall/resume timeline: a steady-state disk-full fault is armed
//      mid-run and later cleared. The timeline samples log health, commits
//      and writer rejects; hard checks enforce the protocol — the flusher
//      stalls (never poisons), writers are shed with LogUnavailable, the
//      watchdog notices the prolonged degradation, and after the fault
//      clears the flusher resumes and durability advances again.
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/fault_injection.h"
#include "engine/watchdog.h"
#include "log/log_manager.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

// ---- phase 1: 100%-hotspot write mix ---------------------------------------

class HotspotWorkload : public Workload {
 public:
  Status Load(Database* db) override {
    table_ = db->CreateTable("hotspot");
    pk_ = db->CreateIndex(table_, "hotspot_pk");
    Transaction txn(db, CcScheme::kSi);
    Oid oid = 0;
    ERMIA_RETURN_NOT_OK(txn.Insert(table_, pk_, "hot", "seed", &oid));
    return txn.Commit();
  }

  size_t NumTxnTypes() const override { return 1; }
  const char* TxnTypeName(size_t) const override { return "hot_rmw"; }
  size_t PickTxnType(FastRandom&) const override { return 0; }

  Status RunTxn(Database* db, CcScheme scheme, size_t, uint32_t worker_id,
                uint32_t, FastRandom& rng) override {
    Transaction txn(db, scheme);
    Oid oid = 0;
    Status s = txn.GetOid(pk_, "hot", &oid);
    // Hold the read-to-write window open: a bare hot-key RMW is single-digit
    // microseconds — too short for offered threads to overlap, so no storm
    // would ever form. Real contended transactions do work here.
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    if (s.ok()) {
      s = txn.Update(table_, oid,
                     "w" + std::to_string(worker_id) + "-" +
                         std::to_string(rng.Next() & 0xffff));
    }
    if (!s.ok()) {
      txn.Abort();
      return s;
    }
    return txn.Commit();
  }

 private:
  Table* table_ = nullptr;
  Index* pk_ = nullptr;
};

EngineConfig GovernorConfig(bool governed) {
  EngineConfig config;
  config.governor_enabled = governed;
  config.occ_snapshot_interval_ms = 5;  // the daemon tick drives Tick()
  return config;
}

BenchResult RunHotspot(bool governed, const BenchOptions& options) {
  ScopedDatabase scoped(GovernorConfig(governed));
  ERMIA_CHECK(scoped.db->Open().ok());
  HotspotWorkload workload;
  ERMIA_CHECK(workload.Load(scoped.db).ok());
  return RunBench(scoped.db, &workload, options);
}

// ---- phase 2: ENOSPC stall/resume timeline ---------------------------------

EngineConfig TimelineConfig() {
  EngineConfig config;
  config.synchronous_commit = false;  // rejects surface at the write op
  config.checkpoint_interval_ms = 0;  // keep checkpoint writes off the plan
  config.log_stall_retry_initial_ms = 1;
  config.log_stall_retry_max_ms = 8;
  // A fast watchdog so the 400ms degradation window is long enough to trip
  // (grace well under the window, but not so tight that a busy-but-healthy
  // flusher pass trips the frozen-durable check).
  config.watchdog_interval_ms = 25;
  config.watchdog_grace_ms = 150;
  return config;
}

Status Put(Database* db, const std::string& key, const std::string& value) {
  Transaction txn(db, CcScheme::kSi);
  Oid oid = 0;
  Status s = txn.Insert(db->GetTable("kv"), db->GetIndex("kv_pk"), key, value,
                        &oid);
  if (!s.ok()) {
    txn.Abort();
    return s;
  }
  return txn.Commit();
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("abl_overload: abort-storm governor + log-stall protocol",
              "DESIGN.md ablation (graceful degradation under overload)");
  JsonReporter json(argc, argv, "abl_overload");

  const double seconds = EnvSeconds(0.3);
  const std::vector<uint32_t> thread_list = EnvThreads({2, 8});

  // ---- phase 1 -------------------------------------------------------------
  std::printf("\n100%%-hotspot write mix (kSi), governor off vs on:\n");
  std::printf("%8s %12s %12s %10s %10s %12s\n", "threads", "off-tps",
              "on-tps", "off-ar", "on-ar", "gov-changes");
  for (const uint32_t threads : thread_list) {
    BenchOptions options;
    options.threads = threads;
    options.seconds = seconds;
    options.scheme = CcScheme::kSi;
    BenchResult ab[2];
    for (const bool governed : {false, true}) {
      ab[governed] = RunHotspot(governed, options);
      json.Add("hotspot/t" + std::to_string(threads) +
                   (governed ? "/on" : "/off"),
               ab[governed]);
    }
    const uint64_t limit_changes =
        ab[1].engine.counter(metrics::Ctr::kGovLimitChanges);
    std::printf("%8u %12.0f %12.0f %9.1f%% %9.1f%% %12llu\n", threads,
                ab[0].tps(), ab[1].tps(),
                100.0 * ab[0].per_type[0].abort_ratio(),
                100.0 * ab[1].per_type[0].abort_ratio(),
                (unsigned long long)limit_changes);
    ERMIA_CHECK(ab[0].total_commits() > 0);
    ERMIA_CHECK(ab[1].total_commits() > 0);
  }

  // ---- phase 2 -------------------------------------------------------------
  std::printf("\nENOSPC stall/resume timeline (4 writers, fault armed at "
              "300ms, cleared at 700ms):\n");
  std::printf("%8s %10s %10s %10s\n", "ms", "health", "commits", "rejects");
  {
    ScopedDatabase scoped(TimelineConfig());
    Database* db = scoped.db;
    db->CreateTable("kv");
    db->CreateIndex(db->GetTable("kv"), "kv_pk");
    ERMIA_CHECK(db->Open().ok());
    const metrics::MetricsSnapshot before = db->SnapshotMetrics();

    constexpr int kWriters = 4;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> committed{0};
    std::vector<std::thread> writers;
    for (int t = 0; t < kWriters; ++t) {
      writers.emplace_back([&, t] {
        uint64_t seq = 0;
        while (!stop.load(std::memory_order_acquire)) {
          Status s = Put(db, "w" + std::to_string(t) + "-" +
                                 std::to_string(seq),
                         "v" + std::to_string(seq));
          if (s.ok()) {
            ++seq;
            committed.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Shed writer: back off on the stall-resolution timescale.
            ERMIA_CHECK(s.IsLogUnavailable());
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        }
        ThreadRegistry::Deregister();
      });
    }

    const auto t0 = std::chrono::steady_clock::now();
    auto elapsed_ms = [&t0] {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - t0)
          .count();
    };
    bool armed = false;
    bool disarmed = false;
    while (elapsed_ms() < 1200) {
      const long now = elapsed_ms();
      if (!armed && now >= 300) {
        fault::Plan plan;
        plan.mode = fault::Mode::kShortWrite;  // steady-state ENOSPC
        plan.trigger_after = 1;
        plan.fire_count = fault::kFireUntilDisarmed;
        fault::InstallPlan(plan);
        armed = true;
      }
      if (armed && !disarmed && now >= 700) {
        fault::Disarm();
        disarmed = true;
      }
      const metrics::MetricsSnapshot snap =
          db->SnapshotMetrics().DeltaSince(before);
      std::printf("%8ld %10s %10llu %10llu\n", now,
                  LogHealthName(db->log().health()),
                  (unsigned long long)committed.load(),
                  (unsigned long long)snap.counter(
                      metrics::Ctr::kLogWriterRejects));
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    stop.store(true, std::memory_order_release);
    for (auto& w : writers) w.join();

    // Protocol acceptance: the fault stalled (never poisoned) the log,
    // writers were shed, the watchdog noticed the prolonged degradation, and
    // the flusher resumed once the fault cleared.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (db->log().health() != LogHealth::kHealthy &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ERMIA_CHECK(db->log().health() == LogHealth::kHealthy);
    ERMIA_CHECK(Put(db, "post-resume", "pv").ok());
    ERMIA_CHECK(db->log().WaitForDurable(db->log().CurrentOffset()).ok());

    BenchResult timeline;
    timeline.seconds = 1.2;
    timeline.threads = kWriters;
    timeline.type_names.push_back("put");
    timeline.per_type.resize(1);
    timeline.engine = db->SnapshotMetrics().DeltaSince(before);
    timeline.per_type[0].commits = committed.load();
    timeline.per_type[0].aborts =
        timeline.engine.counter(metrics::Ctr::kLogWriterRejects);
    json.Add("stall_timeline", timeline);

    ERMIA_CHECK(timeline.engine.counter(metrics::Ctr::kLogStalls) >= 1);
    ERMIA_CHECK(timeline.engine.counter(metrics::Ctr::kLogStallResumes) >= 1);
    ERMIA_CHECK(timeline.engine.counter(metrics::Ctr::kLogPoisonEvents) == 0);
    ERMIA_CHECK(timeline.engine.counter(metrics::Ctr::kLogWriterRejects) >= 1);
    ERMIA_CHECK(db->watchdog() != nullptr);
    ERMIA_CHECK(db->watchdog()->trips() >= 1);
    std::printf("\nstall protocol: %llu stalls, %llu retries, %llu resumes, "
                "%llu rejects, %llu watchdog trips, 0 poison events\n",
                (unsigned long long)timeline.engine.counter(
                    metrics::Ctr::kLogStalls),
                (unsigned long long)timeline.engine.counter(
                    metrics::Ctr::kLogStallRetries),
                (unsigned long long)timeline.engine.counter(
                    metrics::Ctr::kLogStallResumes),
                (unsigned long long)timeline.engine.counter(
                    metrics::Ctr::kLogWriterRejects),
                (unsigned long long)db->watchdog()->trips());
  }

  std::printf("\nnote: 'on' = governor_enabled (ERMIA_OVERLOAD=on); the "
              "stall timeline needs log_degraded_modes (ERMIA_LOG_STALL, "
              "default on)\n");
  return 0;
}
