// Fig. 8: TPC-C with uniformly random home-warehouse selection (left) and
// with an 80-20 access skew (right), scaling threads. Expected shape: the
// induced cross-partition contention suppresses Silo-OCC's scalability more
// than ERMIA's — uniform random drags OCC toward ERMIA-SI's level, and high
// skew drags it toward ERMIA-SSN's (the paper's observation that ERMIA's
// robust CC is less sensitive to contention).
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

void RunPolicy(tpcc::PartitionPolicy policy, const char* title, double seconds,
               const std::vector<uint32_t>& threads, double density,
               const char* label, JsonReporter* json) {
  std::printf("\n-- TPC-C, %s --\n", title);
  std::printf("%8s %14s %14s %14s   (kTps)\n", "threads", "Silo-OCC",
              "ERMIA-SI", "ERMIA-SSN");
  for (uint32_t n : threads) {
    std::printf("%8u", n);
    for (CcScheme scheme : kAllSchemes) {
      BenchOptions options;
      options.threads = n;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunPoint<tpcc::TpccWorkload>(
          [&] {
            tpcc::TpccConfig cfg;
            cfg.warehouses = std::max(1u, EnvScale(n));
            cfg.density = density;
            tpcc::TpccRunOptions opts;
            opts.policy = policy;
            return std::make_unique<tpcc::TpccWorkload>(cfg, opts);
          },
          options);
      std::printf(" %14.2f", r.tps() / 1000.0);
      json->Add(std::string(label) + "/" + CcSchemeName(scheme) +
                    "/threads=" + std::to_string(n),
                r);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("fig08_skew: TPC-C under random and skewed warehouse access",
              "Figure 8 (uniform left, 80-20 skew right)");
  JsonReporter json(argc, argv, "fig08_skew");
  const double seconds = EnvSeconds(0.4);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const double density = EnvDensity(0.05);
  RunPolicy(tpcc::PartitionPolicy::kUniform, "uniformly random access",
            seconds, threads, density, "uniform", &json);
  RunPolicy(tpcc::PartitionPolicy::kSkewed8020, "80-20 access skew", seconds,
            threads, density, "skew8020", &json);
  return 0;
}
