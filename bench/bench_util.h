// Shared scaffolding for the figure-reproduction binaries. Each binary
// prints the same rows/series the paper reports; defaults are sized for a
// small container and scale up via ERMIA_BENCH_SECONDS / ERMIA_BENCH_THREADS
// / ERMIA_BENCH_SCALE / ERMIA_BENCH_DENSITY (see DESIGN.md §4).
#ifndef ERMIA_BENCH_BENCH_UTIL_H_
#define ERMIA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/driver.h"

namespace ermia {
namespace bench {

inline const std::vector<CcScheme> kAllSchemes = {
    CcScheme::kOcc, CcScheme::kSi, CcScheme::kSiSsn};

// Loads a fresh database + workload and runs one benchmark point, exactly as
// the paper does per data point.
template <typename WorkloadT>
BenchResult RunPoint(std::function<std::unique_ptr<WorkloadT>()> make_workload,
                     const BenchOptions& options) {
  EngineConfig config;
  ScopedDatabase scoped(config);
  Status s = scoped.db->Open();
  ERMIA_CHECK(s.ok());
  auto workload = make_workload();
  s = workload->Load(scoped.db);
  ERMIA_CHECK(s.ok());
  return RunBench(scoped.db, workload.get(), options);
}

inline void PrintHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

inline size_t TypeIndex(const BenchResult& r, const std::string& name) {
  for (size_t i = 0; i < r.type_names.size(); ++i) {
    if (r.type_names[i] == name) return i;
  }
  return SIZE_MAX;
}

}  // namespace bench
}  // namespace ermia

#endif  // ERMIA_BENCH_BENCH_UTIL_H_
