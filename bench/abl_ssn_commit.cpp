// Ablation: SSN commit certification, global-latch (legacy,
// ssn_parallel_commit=false) vs latch-free parallel (Algorithm 1). The
// global latch serializes every commit's finalize+publish, so a write-heavy
// mix stops scaling the moment certification dominates; the parallel
// protocol only ever waits on *conflicting* in-flight peers. Reports commit
// throughput per thread count and the parallel/latched ratio at the top end.
#include <thread>

#include "bench_util.h"
#include "workloads/micro/micro_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

BenchResult RunMode(bool parallel_commit, uint32_t threads, double seconds) {
  micro::MicroConfig cfg;
  // Write-heavy, low-conflict mix: every transaction certifies writes, but
  // the footprint is spread over enough rows that conflicts stay rare — the
  // regime where certification itself is the bottleneck.
  cfg.table_rows = 100000;
  cfg.reads_per_txn = 4;
  cfg.write_ratio = 0.8;
  micro::MicroWorkload workload(cfg);

  EngineConfig config;
  config.ssn_parallel_commit = parallel_commit;
  ScopedDatabase scoped(config);
  ERMIA_CHECK(scoped.db->Open().ok());
  ERMIA_CHECK(workload.Load(scoped.db).ok());

  BenchOptions options;
  options.threads = threads;
  options.seconds = seconds;
  options.scheme = CcScheme::kSiSsn;
  return RunBench(scoped.db, &workload, options);
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("abl_ssn_commit: global-latch vs latch-free SSN certification",
              "DESIGN.md ablation (paper §3.6.2, Algorithm 1)");
  JsonReporter json(argc, argv, "abl_ssn_commit");

  const double seconds = EnvSeconds(0.3);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4, 8});

  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("\nhardware threads: %u\n", hw);
  if (hw <= 1) {
    std::printf("note: on a single hardware thread the global latch never\n"
                "contends (commits are serialized by the CPU anyway); the\n"
                "parallel/latched gap only appears with real parallelism.\n");
  }

  std::printf("\nwrite-heavy micro (100K rows, 4 reads + 80%% writes), SSN\n");
  std::printf("%8s %18s %18s %10s\n", "threads", "latched-kTps",
              "parallel-kTps", "ratio");

  double last_ratio = 0.0;
  for (uint32_t t : threads) {
    BenchResult latched = RunMode(/*parallel_commit=*/false, t, seconds);
    BenchResult parallel = RunMode(/*parallel_commit=*/true, t, seconds);
    json.Add("latched/threads=" + std::to_string(t), latched);
    json.Add("parallel/threads=" + std::to_string(t), parallel);
    const double ratio =
        latched.tps() > 0 ? parallel.tps() / latched.tps() : 0.0;
    last_ratio = ratio;
    std::printf("%8u %18.2f %18.2f %9.2fx\n", t, latched.tps() / 1000.0,
                parallel.tps() / 1000.0, ratio);
  }
  std::printf("\nparallel/latched at max threads: %.2fx\n", last_ratio);
  return 0;
}
