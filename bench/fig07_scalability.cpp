// Fig. 7: throughput of TPC-C (left) and TPC-E (right) as worker threads
// grow. Expected shape: near-linear scaling for all three systems on these
// low-contention mixes, with Silo-OCC slightly ahead at peak (lowest CC
// overhead when there is little CC pressure) and ERMIA-SSN paying a small
// serializability premium. (On a box with few cores the curves flatten at
// the core count; ERMIA_BENCH_THREADS extends the sweep.)
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"
#include "workloads/tpce/tpce_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("fig07_scalability: TPC-C and TPC-E thread scaling",
              "Figure 7 (TPC-C left, TPC-E right)");
  JsonReporter json(argc, argv, "fig07_scalability");
  const double seconds = EnvSeconds(0.4);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const double density = EnvDensity(0.05);

  std::printf("\n-- TPC-C --\n");
  std::printf("%8s %14s %14s %14s   (kTps)\n", "threads", "Silo-OCC",
              "ERMIA-SI", "ERMIA-SSN");
  for (uint32_t n : threads) {
    std::printf("%8u", n);
    for (CcScheme scheme : kAllSchemes) {
      BenchOptions options;
      options.threads = n;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunPoint<tpcc::TpccWorkload>(
          [&] {
            tpcc::TpccConfig cfg;
            cfg.warehouses = std::max(1u, EnvScale(n));
            cfg.density = density;
            return std::make_unique<tpcc::TpccWorkload>(cfg,
                                                        tpcc::TpccRunOptions{});
          },
          options);
      std::printf(" %14.2f", r.tps() / 1000.0);
      json.Add(std::string("tpcc/") + CcSchemeName(scheme) +
                   "/threads=" + std::to_string(n),
               r);
    }
    std::printf("\n");
  }

  std::printf("\n-- TPC-E --\n");
  std::printf("%8s %14s %14s %14s   (kTps)\n", "threads", "Silo-OCC",
              "ERMIA-SI", "ERMIA-SSN");
  for (uint32_t n : threads) {
    std::printf("%8u", n);
    for (CcScheme scheme : kAllSchemes) {
      BenchOptions options;
      options.threads = n;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunPoint<tpce::TpceWorkload>(
          [&] {
            tpce::TpceConfig cfg;
            cfg.density = density;
            return std::make_unique<tpce::TpceWorkload>(cfg,
                                                        tpce::TpceRunOptions{});
          },
          options);
      std::printf(" %14.2f", r.tps() / 1000.0);
      json.Add(std::string("tpce/") + CcSchemeName(scheme) +
                   "/threads=" + std::to_string(n),
               r);
    }
    std::printf("\n");
  }
  return 0;
}
