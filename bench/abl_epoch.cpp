// Ablation: epoch manager costs (§3.4) — enter/exit pairs, the conditional
// quiescent fast path (a single shared read), migration on epoch change, and
// the deferred-reclamation pipeline.
#include <benchmark/benchmark.h>

#include "common/sysconf.h"
#include "epoch/epoch_manager.h"

namespace {

using namespace ermia;

void BM_EnterExit(benchmark::State& state) {
  static EpochManager mgr;
  for (auto _ : state) {
    mgr.Enter();
    mgr.Exit();
  }
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_EnterExit)->Threads(1)->Threads(2)->Threads(4);

// The paper's conditional quiescent point: when the epoch is not closing,
// announcing costs one shared load.
void BM_QuiesceFastPath(benchmark::State& state) {
  static EpochManager mgr;
  mgr.Enter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.Quiesce());
  }
  mgr.Exit();
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_QuiesceFastPath)->Threads(1)->Threads(2)->Threads(4);

// Worst case: the epoch advances every iteration, forcing migration.
void BM_QuiesceWithMigration(benchmark::State& state) {
  EpochManager mgr;
  mgr.Enter();
  for (auto _ : state) {
    mgr.Advance();
    benchmark::DoNotOptimize(mgr.Quiesce());
  }
  mgr.Exit();
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_QuiesceWithMigration);

void BM_ReclaimBoundary(benchmark::State& state) {
  static EpochManager mgr;
  mgr.Enter();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mgr.ReclaimBoundary());
  }
  mgr.Exit();
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_ReclaimBoundary);

void BM_DeferAndReclaim(benchmark::State& state) {
  EpochManager mgr;
  for (auto _ : state) {
    mgr.Defer([] {});
    mgr.Advance();
    benchmark::DoNotOptimize(mgr.RunReclaimers());
  }
  ThreadRegistry::Deregister();
}
BENCHMARK(BM_DeferAndReclaim);

}  // namespace

BENCHMARK_MAIN();
