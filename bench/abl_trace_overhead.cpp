// Ablation: cost of the flight-recorder trace layer on TPC-C. Runs the same
// workload with tracing off, sampled (1-in-64 transactions), and all, flipped
// via trace::Configure between samples — the always-compiled instrumentation
// branches are present in every configuration, so "off" measures the branch
// cost and the other two add the ring writes. Acceptance: off within noise of
// itself across pairs (sanity), sampled within ~2% of off; "all" is reported
// for completeness but has no budget (it records every event of every txn).
#include <algorithm>
#include <string>

#include "bench_util.h"
#include "trace/trace.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("abl_trace_overhead: flight recorder off vs sampled vs all",
              "DESIGN.md ablation (observability layer)");
  JsonReporter json(argc, argv, "abl_trace_overhead");

  const double seconds = EnvSeconds(0.5);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const uint32_t scale = EnvScale(std::max(2u, threads.back()));

  // TPC-C per the acceptance criterion: short transactions with several
  // reads/writes each, so the per-event Emit cost gets maximal exposure.
  // One database serves every sample — reloading between runs would swamp
  // the measured effect with allocator/page-cache state differences.
  tpcc::TpccConfig cfg;
  cfg.warehouses = scale;
  tpcc::TpccWorkload workload(cfg, tpcc::TpccRunOptions{});
  ScopedDatabase scoped;
  ERMIA_CHECK(scoped.db->Open().ok());
  ERMIA_CHECK(workload.Load(scoped.db).ok());

  auto run = [&](TraceMode mode, uint32_t t) {
    trace::Configure(mode, /*sample_every=*/64);
    BenchOptions options;
    options.threads = t;
    options.seconds = seconds;
    options.scheme = CcScheme::kSi;
    BenchResult r = RunBench(scoped.db, &workload, options);
    trace::Configure(TraceMode::kOff, 64);
    return r;
  };

  struct ModeRow {
    const char* name;
    TraceMode mode;
  };
  const ModeRow modes[] = {{"sampled-1/64", TraceMode::kSampled},
                           {"all", TraceMode::kAll}};

  // Same methodology as abl_metrics_overhead: the per-event cost is below a
  // shared box's run-to-run noise, so several back-to-back A/B pairs with
  // alternating within-pair order (AB, BA, ...) cancel monotone drift, and
  // the reported overhead is the median of the per-pair ratios. A throwaway
  // round absorbs the cold start.
  constexpr int kReps = 5;
  run(TraceMode::kOff, threads.front());
  std::printf("\nTPC-C (%u warehouses), ERMIA-SI\n", scale);
  std::printf("%14s %8s %14s %14s %10s\n", "mode", "threads", "off-kTps",
              "traced-kTps", "overhead");
  for (const ModeRow& m : modes) {
    for (uint32_t t : threads) {
      std::vector<double> ratios;  // traced/off per pair
      std::vector<double> off_tps, on_tps;
      BenchResult off, on;
      for (int rep = 0; rep < kReps; ++rep) {
        BenchResult o, x;
        if (rep % 2 == 0) {
          o = run(TraceMode::kOff, t);
          x = run(m.mode, t);
        } else {
          x = run(m.mode, t);
          o = run(TraceMode::kOff, t);
        }
        if (o.tps() > 0) ratios.push_back(x.tps() / o.tps());
        off_tps.push_back(o.tps());
        on_tps.push_back(x.tps());
        off = std::move(o);
        on = std::move(x);
      }
      std::sort(ratios.begin(), ratios.end());
      std::sort(off_tps.begin(), off_tps.end());
      std::sort(on_tps.begin(), on_tps.end());
      const double overhead =
          ratios.empty() ? 0.0 : 100.0 * (1.0 - ratios[ratios.size() / 2]);
      std::printf("%14s %8u %14.2f %14.2f %9.2f%%\n", m.name, t,
                  off_tps[kReps / 2] / 1000.0, on_tps[kReps / 2] / 1000.0,
                  overhead);
      json.Add(std::string("off/") + m.name + "/threads=" + std::to_string(t),
               off);
      json.Add(std::string(m.name) + "/threads=" + std::to_string(t), on);
    }
  }
  return 0;
}
