// Ablation: indirection-array design choices (§3.2) — the single-CAS version
// install vs what an update would cost without indirection (an index
// re-insert), OID allocation, and version-chain traversal by chain depth.
#include <benchmark/benchmark.h>

#include "common/key_encoder.h"
#include "index/btree.h"
#include "storage/indirection_array.h"
#include "storage/version.h"

namespace {

using namespace ermia;

void BM_OidAllocate(benchmark::State& state) {
  static IndirectionArray array;
  for (auto _ : state) {
    benchmark::DoNotOptimize(array.Allocate());
  }
}
BENCHMARK(BM_OidAllocate)->Threads(1)->Threads(4);

// The update path with indirection: allocate a version, one CAS on the slot.
void BM_CasInstall(benchmark::State& state) {
  static IndirectionArray array;
  static Oid oid = [] {
    Oid o = array.Allocate();
    Version* v = Version::Alloc("initial");
    array.PutHead(o, v);
    return o;
  }();
  for (auto _ : state) {
    Version* head = array.Head(oid);
    Version* nv = Version::Alloc("update-payload");
    nv->next.store(head, std::memory_order_relaxed);
    if (!array.CasHead(oid, head, nv)) {
      Version::Free(nv);
    }
  }
}
BENCHMARK(BM_CasInstall)->Threads(1)->Threads(2)->Threads(4);

// The update path without indirection (what the paper argues against):
// every new version would need the index entry rewritten.
void BM_IndexReinsertPerUpdate(benchmark::State& state) {
  static BTree tree;
  static bool loaded = [] {
    NodeHandle nh;
    for (uint64_t i = 0; i < 10000; ++i) {
      tree.Insert(KeyEncoder().U64(i).slice(), static_cast<Oid>(i + 1), &nh,
                  nullptr);
    }
    return true;
  }();
  (void)loaded;
  uint64_t i = 0;
  for (auto _ : state) {
    const auto key = KeyEncoder().U64(i++ % 10000);
    tree.Remove(key.slice());
    NodeHandle nh;
    tree.Insert(key.slice(), static_cast<Oid>(i), &nh, nullptr);
  }
}
BENCHMARK(BM_IndexReinsertPerUpdate);

// Chain traversal cost as a function of version-chain depth (why GC matters).
void BM_ChainWalk(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  IndirectionArray array;
  const Oid oid = array.Allocate();
  Version* prev = nullptr;
  for (int i = 0; i < depth; ++i) {
    Version* v = Version::Alloc("payload-bytes-here");
    v->clsn.store(Lsn::Make(i + 1, 0).value());
    v->next.store(prev);
    prev = v;
  }
  array.PutHead(oid, prev);
  for (auto _ : state) {
    // Read the oldest version (worst case for a long-lived snapshot).
    Version* v = array.Head(oid);
    while (v->next.load(std::memory_order_acquire) != nullptr) {
      v = v->next.load(std::memory_order_acquire);
    }
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_ChainWalk)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
