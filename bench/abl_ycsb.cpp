// Ablation: YCSB mixes A/B/C/E/F across the four CC schemes (extension —
// the standard key-value kit for memory-optimized engines). Shows the same
// story as the paper from another angle: schemes converge on read-dominated
// mixes (B/C) and diverge as writes and skew grow (A/F with zipf 0.8).
#include "bench_util.h"
#include "workloads/ycsb/ycsb_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("abl_ycsb: YCSB A/B/C/E/F across CC schemes",
              "DESIGN.md ablation (extension)");
  JsonReporter json(argc, argv, "abl_ycsb");
  const double seconds = EnvSeconds(0.3);
  const uint32_t threads = EnvThreads({4}).front();
  const uint64_t records = std::max<uint64_t>(
      10000, static_cast<uint64_t>(1000000 * EnvDensity(0.1)));

  const std::vector<std::pair<ycsb::YcsbMix, const char*>> mixes = {
      {ycsb::YcsbMix::kA, "A (50r/50u)"},  {ycsb::YcsbMix::kB, "B (95r/5u)"},
      {ycsb::YcsbMix::kC, "C (100r)"},     {ycsb::YcsbMix::kE, "E (scan/ins)"},
      {ycsb::YcsbMix::kF, "F (50r/50rmw)"}};
  const std::vector<CcScheme> schemes = {CcScheme::kOcc, CcScheme::kSi,
                                         CcScheme::kSiSsn, CcScheme::k2pl};

  ycsb::YcsbConfig cfg;
  cfg.records = records;
  ycsb::YcsbWorkload workload(cfg);
  ScopedDatabase scoped;
  ERMIA_CHECK(scoped.db->Open().ok());
  ERMIA_CHECK(workload.Load(scoped.db).ok());

  std::printf("\n%u threads, %llu records, zipf 0.8  (kTps)\n", threads,
              static_cast<unsigned long long>(records));
  std::printf("%-14s %12s %12s %12s %12s\n", "mix", "Silo-OCC", "ERMIA-SI",
              "ERMIA-SSN", "ERMIA-2PL");
  for (const auto& [mix, name] : mixes) {
    workload.set_mix(mix);
    std::printf("%-14s", name);
    for (CcScheme scheme : schemes) {
      BenchOptions options;
      options.threads = threads;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunBench(scoped.db, &workload, options);
      std::printf(" %12.2f", r.tps() / 1000.0);
      std::fflush(stdout);
      json.Add(std::string(CcSchemeName(scheme)) + "/mix=" + name, r);
    }
    std::printf("\n");
  }
  return 0;
}
