// Fig. 6 + Table 1 (row 2): TPC-E-hybrid as the AssetEval group size grows
// from 1% to 100% of the account range. Same three panels as Fig. 5.
// Expected shape: gentler than TPC-C-hybrid (TPC-E is less contended), but
// Silo-OCC's AssetEval throughput still collapses at larger footprints while
// ERMIA commits nearly all of them.
#include "bench_util.h"
#include "workloads/tpce/tpce_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("fig06_tpce_hybrid: TPC-E + AssetEval, varying AssetEval size",
              "Figure 6 (all three panels) + Table 1 (TPC-E-hybrid row)");
  JsonReporter json(argc, argv, "fig06_tpce_hybrid");
  const double seconds = EnvSeconds(0.5);
  const uint32_t threads = EnvThreads({4}).front();
  const double density = EnvDensity(0.05);
  const std::vector<double> sizes = {0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0};

  struct Cell {
    double total_tps, ae_tps, ae_abort;
  };
  std::vector<std::vector<Cell>> grid(kAllSchemes.size());

  for (size_t si = 0; si < kAllSchemes.size(); ++si) {
    for (double size : sizes) {
      BenchOptions options;
      options.threads = threads;
      options.seconds = seconds;
      options.scheme = kAllSchemes[si];
      BenchResult r = RunPoint<tpce::TpceWorkload>(
          [&] {
            tpce::TpceConfig cfg;
            cfg.density = density;
            tpce::TpceRunOptions opts;
            opts.hybrid = true;
            opts.asset_eval_size = size;
            return std::make_unique<tpce::TpceWorkload>(cfg, opts);
          },
          options);
      const size_t ae = TypeIndex(r, "AssetEval");
      grid[si].push_back(
          {r.tps(), r.type_tps(ae), r.per_type[ae].abort_ratio()});
      json.Add(std::string(CcSchemeName(kAllSchemes[si])) +
                   "/ae=" + std::to_string(size),
               r);
    }
  }

  auto print_panel = [&](const char* title,
                         const std::function<double(const Cell&)>& f,
                         bool normalize_to_si) {
    std::printf("\n-- %s --\n", title);
    std::printf("%10s %14s %14s %14s\n", "AE size", "Silo-OCC", "ERMIA-SI",
                "ERMIA-SSN");
    for (size_t x = 0; x < sizes.size(); ++x) {
      std::printf("%9.0f%%", sizes[x] * 100);
      const double si_val = f(grid[1][x]);
      for (size_t s = 0; s < kAllSchemes.size(); ++s) {
        const double v = f(grid[s][x]);
        std::printf(" %14.3f", normalize_to_si && si_val > 0 ? v / si_val : v);
      }
      std::printf("\n");
    }
  };
  print_panel("overall throughput (normalized to ERMIA-SI)",
              [](const Cell& c) { return c.total_tps; }, true);
  print_panel("AssetEval throughput (normalized to ERMIA-SI)",
              [](const Cell& c) { return c.ae_tps; }, true);
  print_panel("AssetEval abort ratio (%)",
              [](const Cell& c) { return c.ae_abort * 100; }, false);

  std::printf("\n-- Table 1 row: absolute overall TPS of ERMIA-SI --\n");
  for (size_t x = 0; x < sizes.size(); ++x) {
    std::printf("%9.0f%%: %10.0f tps\n", sizes[x] * 100, grid[1][x].total_tps);
  }
  return 0;
}
