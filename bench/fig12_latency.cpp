// Fig. 12: latency of the Q2* transaction at 60% and 80% footprint sizes,
// varying thread count, with min/max bars. Expected shape: ERMIA-SI and
// ERMIA-SSN deliver consistent latency with negligible variance; Silo-OCC's
// Q2* latency grows faster with parallelism and fluctuates once transactions
// get large (read-write contention on its single-version records plus
// commit-time validation over a huge footprint).
#include "bench_util.h"
#include "workloads/tpcc/tpcc_workload.h"

using namespace ermia;
using namespace ermia::bench;

namespace {

void RunSize(double size, double seconds, const std::vector<uint32_t>& threads,
             double density, JsonReporter* json) {
  std::printf("\n-- Q2* latency at %.0f%% size (ms; mean [min..max]) --\n",
              size * 100);
  std::printf("%8s %24s %24s %24s\n", "threads", "Silo-OCC", "ERMIA-SI",
              "ERMIA-SSN");
  for (uint32_t n : threads) {
    std::printf("%8u", n);
    for (CcScheme scheme : kAllSchemes) {
      BenchOptions options;
      options.threads = n;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunPoint<tpcc::TpccWorkload>(
          [&] {
            tpcc::TpccConfig cfg;
            // Paper: scale factor tracks thread count, so the scanned Stock
            // range grows with parallelism.
            cfg.warehouses = std::max(1u, EnvScale(n));
            cfg.density = density;
            tpcc::TpccRunOptions opts;
            opts.hybrid = true;
            opts.q2_fraction = size;
            return std::make_unique<tpcc::TpccWorkload>(cfg, opts);
          },
          options);
      json->Add(std::string(CcSchemeName(scheme)) + "/q2=" +
                    std::to_string(size) + "/threads=" + std::to_string(n),
                r);
      const size_t q2 = TypeIndex(r, "Q2*");
      const Histogram& h = r.per_type[q2].latency;
      if (h.count() == 0) {
        std::printf(" %24s", "no commits");
      } else {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.1f [%.1f..%.1f]", h.mean() / 1000.0,
                      h.min() / 1000.0, static_cast<double>(h.max()) / 1000.0);
        std::printf(" %24s", buf);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintHeader("fig12_latency: Q2* latency under growing parallelism",
              "Figure 12 (60% size left, 80% size right)");
  JsonReporter json(argc, argv, "fig12_latency");
  const double seconds = EnvSeconds(0.5);
  const std::vector<uint32_t> threads = EnvThreads({1, 2, 4});
  const double density = EnvDensity(0.05);
  RunSize(0.6, seconds, threads, density, &json);
  RunSize(0.8, seconds, threads, density, &json);
  return 0;
}
