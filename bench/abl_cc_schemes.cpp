// Ablation: all four CC schemes (SI, SI+SSN, Silo-OCC, and the 2PL
// extension) on the microbenchmark at low and high contention. Probes the
// Agrawal/Carey/Livny claim the paper's §2 leans on: pessimistic CC beats
// optimistic CC under high contention *if* its overhead is low — here all
// four run on the identical physical layer, so the difference is pure CC.
#include "bench_util.h"
#include "workloads/micro/micro_workload.h"

using namespace ermia;
using namespace ermia::bench;

int main(int argc, char** argv) {
  PrintHeader("abl_cc_schemes: four CC schemes vs contention",
              "DESIGN.md ablation (paper §2 discussion)");
  JsonReporter json(argc, argv, "abl_cc_schemes");

  const double seconds = EnvSeconds(0.3);
  const uint32_t threads = EnvThreads({4}).front();

  struct Point {
    const char* name;
    uint32_t rows;
    uint32_t reads;
    double write_ratio;
  };
  const Point points[] = {
      {"low contention  (100K rows, 100 reads, 1% writes)", 100000, 100, 0.01},
      {"mid contention  (1K rows, 100 reads, 10% writes)", 1000, 100, 0.10},
      {"high contention (100 rows, 20 reads, 50% writes)", 100, 20, 0.50},
  };
  const std::vector<CcScheme> schemes = {CcScheme::kOcc, CcScheme::kSi,
                                         CcScheme::kSiSsn, CcScheme::k2pl};

  for (const Point& p : points) {
    std::printf("\n-- %s, %u threads --\n", p.name, threads);
    std::printf("%12s %14s %14s %12s\n", "scheme", "kTps", "commits",
                "abort-%");
    micro::MicroConfig cfg;
    cfg.table_rows = p.rows;
    cfg.reads_per_txn = p.reads;
    cfg.write_ratio = p.write_ratio;
    micro::MicroWorkload workload(cfg);
    ScopedDatabase scoped;
    ERMIA_CHECK(scoped.db->Open().ok());
    ERMIA_CHECK(workload.Load(scoped.db).ok());
    for (CcScheme scheme : schemes) {
      BenchOptions options;
      options.threads = threads;
      options.seconds = seconds;
      options.scheme = scheme;
      BenchResult r = RunBench(scoped.db, &workload, options);
      json.Add(std::string(CcSchemeName(scheme)) + "/rows=" +
                   std::to_string(p.rows) + "/wr=" +
                   std::to_string(p.write_ratio),
               r);
      const double aborts =
          r.total_commits() + r.total_aborts() > 0
              ? 100.0 * r.total_aborts() /
                    (r.total_commits() + r.total_aborts())
              : 0.0;
      std::printf("%12s %14.2f %14llu %11.1f%%\n", CcSchemeName(scheme),
                  r.tps() / 1000.0,
                  static_cast<unsigned long long>(r.total_commits()), aborts);
    }
  }
  return 0;
}
